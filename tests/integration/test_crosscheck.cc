#include <gtest/gtest.h>

#include <cstdint>

#include "arch/accelerator.h"
#include "common/bits.h"
#include "core/engine.h"
#include "core/sufa.h"
#include "model/model_workload.h"

namespace sofa {
namespace {

// The coarse "sim runs and quality is sane" cross-checks of
// test_end_to_end predate the stage engine. With the engine the
// functional op counts are exact per (batch, head), so the analytic
// arch/ models can be cross-checked at exact integer / closed-form
// tolerances, including the multi-head and KV-cache decode shapes.

ModelWorkloadSpec
gridSpec()
{
    ModelWorkloadSpec spec;
    spec.batch = 2;
    spec.heads = 3;
    spec.seq = 160;
    spec.queries = 12;
    spec.headDim = 16;
    spec.tokenDim = 24;
    return spec;
}

TEST(CrossCheck, SimUsefulOpsExactOnMultiHeadShape)
{
    // The simulator's useful-op accounting is closed-form; it must
    // agree exactly with the dense-equivalent definition for any
    // (T, S, d, heads).
    SofaAccelerator acc;
    for (int heads : {1, 3, 8}) {
        AttentionShape shape;
        shape.queries = 96;
        shape.seq = 1024;
        shape.headDim = 64;
        shape.heads = heads;
        const auto r = acc.run(shape);
        EXPECT_DOUBLE_EQ(r.usefulOps,
                         4.0 * 96.0 * 1024.0 * 64.0 * heads);
    }
}

TEST(CrossCheck, SimKeptKeysAndTilesExact)
{
    SofaConfig cfg;
    cfg.topkFrac = 0.2;
    cfg.tileBc = 16;
    SofaAccelerator acc(cfg);
    AttentionShape shape;
    shape.queries = 64;
    shape.seq = 1000; // not a multiple of Bc: ceil must show up
    const auto r = acc.run(shape);
    EXPECT_DOUBLE_EQ(r.stats.get("kept_keys"), 200.0);
    EXPECT_DOUBLE_EQ(r.stats.get("tiles"),
                     static_cast<double>(ceilDiv(1000, 16)));
}

TEST(CrossCheck, EngineFormalOpsMatchAnalyticExactly)
{
    // Executed SU-FA + KV op counts vs the closed-form models, as an
    // exact integer relation (not a tolerance): per row of n kept
    // keys the executed descending path saves d muls and d+1 adds on
    // the first element vs the analytic form, and each max-ensure
    // violation costs one extra exp and 1+d muls.
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.2;
    const EngineResult er = runEngine(mw, cfg);

    const auto &spec = mw.spec;
    const std::int64_t rows = static_cast<std::int64_t>(spec.batch) *
                              spec.heads * spec.queries;
    const std::int64_t kept =
        pipelineKeepCount(cfg.pipeline.topkFrac, spec.seq);
    const std::int64_t d = spec.headDim;
    const std::int64_t viol = er.maxViolations;

    const OpCounter analytic = sufaAnalyticOps(
        rows, kept, spec.headDim, SufaOrder::Descending);
    const OpCounter kv = kvGenerationOps(
        er.keysGenerated, spec.tokenDim, spec.headDim);

    EXPECT_EQ(er.formalOps.muls(), kv.muls() + analytic.muls() -
                                       rows * d + viol * (1 + d));
    EXPECT_EQ(er.formalOps.adds(),
              kv.adds() + analytic.adds() - rows * (d + 1));
    EXPECT_EQ(er.formalOps.exps(), analytic.exps() + viol);
    EXPECT_EQ(er.formalOps.cmps(), analytic.cmps());
    EXPECT_EQ(er.formalOps.divs(), analytic.divs());
}

TEST(CrossCheck, EngineCoverageFeedsSimMonotonically)
{
    // The engine measures true key coverage; the sim's on-demand KV
    // stage consumes it. More coverage must never cost less time or
    // DRAM traffic.
    const auto mw = generateModelWorkload(gridSpec());
    const EngineResult er = runEngine(mw, EngineConfig{});
    const double coverage =
        static_cast<double>(er.keysGenerated) /
        (static_cast<double>(mw.spec.batch) * mw.spec.heads *
         mw.spec.seq);
    ASSERT_GT(coverage, 0.0);
    ASSERT_LE(coverage, 1.0);

    SofaAccelerator acc;
    AttentionShape lo, hi;
    lo.queries = hi.queries = mw.spec.queries;
    lo.seq = hi.seq = mw.spec.seq;
    lo.headDim = hi.headDim = mw.spec.headDim;
    lo.heads = hi.heads = mw.spec.heads;
    lo.keyCoverage = coverage;
    hi.keyCoverage = std::min(1.0, coverage * 1.5);
    const auto rl = acc.run(lo);
    const auto rh = acc.run(hi);
    EXPECT_LE(rl.dramBytes, rh.dramBytes);
    EXPECT_LE(rl.timeNs, rh.timeNs + 1e-9);
}

TEST(CrossCheck, DecodeShapeAgreesAcrossLayers)
{
    // KV-cache decode shape: T = newTokens, S = pastLen + newTokens.
    // The engine executes it; the sim scores the same AttentionShape;
    // both must see the same exact kept-keys count, and the sim's
    // useful-ops accounting stays exact at decode parallelism.
    ModelWorkloadSpec spec = gridSpec();
    spec.batch = 1;
    spec.pastLen = 152;
    spec.newTokens = 8;
    const auto mw = generateModelWorkload(spec);
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.2;
    const EngineResult er = runEngine(mw, cfg);

    const int S = spec.contextLen();
    const std::int64_t kept =
        pipelineKeepCount(cfg.pipeline.topkFrac, S);
    for (const HeadResult &hr : er.heads)
        for (const Selection &sel : hr.result.selections)
            EXPECT_EQ(static_cast<std::int64_t>(sel.size()), kept);

    SofaConfig acfg;
    acfg.topkFrac = 0.2;
    SofaAccelerator acc(acfg);
    AttentionShape shape;
    shape.queries = spec.newTokens;
    shape.seq = S;
    shape.headDim = spec.headDim;
    shape.heads = spec.heads;
    const auto r = acc.run(shape);
    EXPECT_DOUBLE_EQ(r.stats.get("kept_keys"),
                     static_cast<double>(kept));
    EXPECT_DOUBLE_EQ(r.usefulOps, 4.0 * spec.newTokens * S *
                                      spec.headDim * spec.heads);

    // Decode steps must simulate faster than the equivalent prefill
    // of the same context (T = S).
    AttentionShape prefill = shape;
    prefill.queries = S;
    EXPECT_LT(r.timeNs, acc.run(prefill).timeNs);
}

TEST(CrossCheck, EngineViolationRateWithinSimAssumption)
{
    // The sim's default violationRate models DLZS misprediction; the
    // engine measures the true rate. The measured rate on a
    // realistic mixture must stay within the same order — a tight
    // factor, not the old "just positive" check.
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.2;
    const EngineResult er = runEngine(mw, cfg);
    const double executed_keys =
        static_cast<double>(mw.spec.batch) * mw.spec.heads *
        mw.spec.queries *
        static_cast<double>(
            pipelineKeepCount(cfg.pipeline.topkFrac, mw.spec.seq));
    const double rate =
        static_cast<double>(er.maxViolations) / executed_keys;
    EXPECT_LT(rate, 0.15); // AttentionShape default is 0.02
}

} // namespace
} // namespace sofa
