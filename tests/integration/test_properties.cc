#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator.h"
#include "core/dlzs.h"
#include "core/pipeline.h"
#include "core/sads.h"
#include "model/workload.h"
#include "sparsity/metrics.h"

namespace sofa {
namespace {

// --- Determinism -----------------------------------------------------

TEST(Determinism, PipelineIsSeedDeterministic)
{
    WorkloadSpec spec;
    spec.seq = 256;
    spec.queries = 16;
    spec.seed = 0xDE7;
    PipelineConfig cfg;
    auto r1 = runSofaPipeline(generateWorkload(spec), cfg);
    auto r2 = runSofaPipeline(generateWorkload(spec), cfg);
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_EQ(r1.selections, r2.selections);
    EXPECT_EQ(r1.totalOps().total(), r2.totalOps().total());
}

TEST(Determinism, SimulatorIsDeterministic)
{
    SofaAccelerator acc;
    AttentionShape shape;
    shape.queries = 256;
    shape.seq = 2048;
    auto r1 = acc.run(shape);
    auto r2 = acc.run(shape);
    EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
    EXPECT_DOUBLE_EQ(r1.energyPj, r2.energyPj);
    EXPECT_DOUBLE_EQ(r1.dramBytes, r2.dramBytes);
}

// --- Simulator monotonicity properties --------------------------------

TEST(SimProperties, TimeMonotoneInSeq)
{
    SofaAccelerator acc;
    double prev = 0.0;
    for (std::int64_t s : {512, 1024, 2048, 4096, 8192}) {
        AttentionShape shape;
        shape.queries = 128;
        shape.seq = s;
        const double t = acc.run(shape).timeNs;
        EXPECT_GT(t, prev) << "S=" << s;
        prev = t;
    }
}

TEST(SimProperties, TimeMonotoneInQueries)
{
    SofaAccelerator acc;
    double prev = 0.0;
    for (std::int64_t q : {32, 128, 512, 2048}) {
        AttentionShape shape;
        shape.queries = q;
        shape.seq = 2048;
        const double t = acc.run(shape).timeNs;
        EXPECT_GE(t, prev) << "T=" << q;
        prev = t;
    }
}

TEST(SimProperties, EnergyMonotoneInKeep)
{
    AttentionShape shape;
    shape.queries = 256;
    shape.seq = 2048;
    double prev = 0.0;
    for (double keep : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        SofaConfig cfg;
        cfg.topkFrac = keep;
        const auto r = SofaAccelerator(cfg).run(shape);
        const double e = r.energyPj + r.dramEnergyPj;
        EXPECT_GT(e, prev) << "keep=" << keep;
        prev = e;
    }
}

TEST(SimProperties, ViolationRateRaisesEnergyOnly)
{
    AttentionShape clean, noisy;
    clean.queries = noisy.queries = 256;
    clean.seq = noisy.seq = 2048;
    clean.violationRate = 0.0;
    noisy.violationRate = 0.3;
    SofaAccelerator acc;
    auto rc = acc.run(clean);
    auto rn = acc.run(noisy);
    EXPECT_GE(rn.energyPj, rc.energyPj);
}

TEST(SimProperties, EveryFeatureContributes)
{
    // Disabling any single feature must not make the design better
    // on the energy x delay product.
    AttentionShape shape;
    shape.queries = 512;
    shape.seq = 4096;
    shape.headDim = 64;
    SofaConfig full;
    const auto base = SofaAccelerator(full).run(shape);
    const double base_edp =
        base.timeNs * (base.energyPj + base.dramEnergyPj);

    for (int i = 0; i < 6; ++i) {
        SofaConfig cfg;
        switch (i) {
          case 0: cfg.features.dlzsPrediction = false; break;
          case 1: cfg.features.sadsSorting = false; break;
          case 2: cfg.features.sufaOrdering = false; break;
          case 3: cfg.features.rassScheduling = false; break;
          case 4: cfg.features.tiledPipeline = false; break;
          case 5: cfg.features.onDemandKv = false; break;
        }
        const auto r = SofaAccelerator(cfg).run(shape);
        const double edp =
            r.timeNs * (r.energyPj + r.dramEnergyPj);
        EXPECT_GE(edp, base_edp * 0.999) << "feature " << i;
    }
}

// --- DLZS golden vectors ----------------------------------------------

TEST(DlzsGolden, KnownProducts)
{
    // Hand-computed: y=20 (LZ 3, exp 5) -> x<<5; y=127 (LZ 1,
    // exp 7) -> x<<7; y=1 (LZ 7, exp 1) -> x<<1.
    struct Case { int x; int y; std::int64_t expect; };
    const Case cases[] = {
        {6, 20, 6ll << 5},    {3, 127, 3ll << 7},
        {100, 1, 100ll << 1}, {-6, 20, -(6ll << 5)},
        {6, -20, -(6ll << 5)}, {-6, -20, 6ll << 5},
    };
    for (const auto &c : cases) {
        MatI8 ym(1, 1);
        ym(0, 0) = static_cast<std::int8_t>(c.y);
        LzCode code = lzEncodeI8(ym).codes(0, 0);
        EXPECT_EQ(dlzsProduct(c.x, 8, code, 8), c.expect)
            << c.x << "*" << c.y;
    }
}

TEST(DlzsGolden, KPredictionSmallMatrix)
{
    // X = [[2, 4]], Wk = [[8], [16]] -> exact 2*8 + 4*16 = 80;
    // DLZS: 2<<(8-4) + 4<<(8-3) = 32 + 128 = 160 (each term
    // overestimates by 1/M = 2 for exact powers of two).
    MatI8 x(1, 2);
    x(0, 0) = 2;
    x(0, 1) = 4;
    MatI8 w(2, 1);
    w(0, 0) = 8;
    w(1, 0) = 16;
    MatI64 k = dlzsKPrediction(x, lzEncodeI8(w), nullptr);
    EXPECT_EQ(k(0, 0), 160);
}

TEST(DlzsGolden, SaturatedOperands)
{
    // INT8 extremes must not overflow the int64 accumulation.
    MatI8 x(1, 4, 127);
    MatI8 w(4, 1);
    w.fill(-128);
    MatI64 k = dlzsKPrediction(x, lzEncodeI8(w), nullptr);
    // Each term: -(127 << 8) = -32512; four terms.
    EXPECT_EQ(k(0, 0), -4 * (127ll << 8));
}

// --- Failure injection --------------------------------------------------

TEST(FailureInjection, SadsAllMassInOneSegment)
{
    // Adversarial: every dominant in segment 0, far beyond the
    // per-segment quota. Refinement must recover most of the mass
    // that the quota would otherwise forfeit.
    MatF scores(4, 256, 0.0f);
    Rng rng(99);
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 256; ++c)
            scores(r, c) = static_cast<float>(
                rng.gaussian(0.0, 0.05));
        for (int c = 0; c < 16; ++c) // 16 dominants in segment 0
            scores(r, c * 4) = 5.0f + 0.1f * c;
    }
    SadsConfig cfg;
    cfg.segments = 4; // quota 8/segment for k=32
    cfg.refineIters = 32;
    auto res = sadsTopK(scores, 32, cfg);
    const double mass =
        softmaxMassRecall(scores, res.selections());
    const double oracle = softmaxMassRecall(
        scores, exactTopKRows(scores, 32));
    EXPECT_GT(mass, 0.9 * oracle);
}

TEST(FailureInjection, PipelineOnConstantScores)
{
    // Degenerate workload: all-equal scores (softmax uniform). The
    // pipeline must not crash and must produce a sane average.
    WorkloadSpec spec;
    spec.seq = 128;
    spec.queries = 8;
    spec.dominantGain = 0.0;   // no dominants
    spec.backgroundGain = 0.0; // no shared ranking
    auto w = generateWorkload(spec);
    w.scores.fill(1.0f); // force exact ties
    PipelineConfig cfg;
    cfg.topkFrac = 0.25;
    // SADS on the true scores' prediction still runs; use the
    // baseline path on the tied matrix directly.
    auto sel = sadsTopK(w.scores, 32, {});
    for (const auto &row : sel.rows)
        EXPECT_EQ(row.selected.size(), 32u);
}

TEST(FailureInjection, SufaSingleKeyRows)
{
    WorkloadSpec spec;
    spec.seq = 64;
    spec.queries = 8;
    auto w = generateWorkload(spec);
    SelectionList sel(8, Selection{0});
    auto res = sufaAttention(w.q, w.k, w.v, sel, {});
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < w.v.cols(); ++c)
            EXPECT_NEAR(res.output(r, c), w.v(0, c), 1e-4);
}

TEST(FailureInjection, WorkloadWithoutBackgroundStillWorks)
{
    WorkloadSpec spec;
    spec.seq = 256;
    spec.queries = 16;
    spec.backgroundGain = 0.0;
    auto w = generateWorkload(spec);
    PipelineConfig cfg;
    cfg.topkFrac = 0.2;
    auto res = runSofaPipeline(w, cfg);
    EXPECT_GT(res.massRecall, 0.5);
    for (float v : res.output.data())
        EXPECT_TRUE(std::isfinite(v));
}

// --- Keep-fraction sweep property ---------------------------------------

class KeepSweep : public ::testing::TestWithParam<double>
{};

TEST_P(KeepSweep, QualityAndCostScale)
{
    WorkloadSpec spec;
    spec.seq = 384;
    spec.queries = 24;
    spec.seed = 0x5EED;
    auto w = generateWorkload(spec);
    PipelineConfig cfg;
    cfg.topkFrac = GetParam();
    auto res = runSofaPipeline(w, cfg);
    // Selection sizes honor the keep fraction exactly.
    const int expect_k = static_cast<int>(
        std::lround(GetParam() * spec.seq));
    for (const auto &sel : res.selections)
        EXPECT_EQ(static_cast<int>(sel.size()), expect_k);
    // Formal op count scales with keep (within on-demand KV noise).
    EXPECT_GT(res.massRecall, GetParam() * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Keeps, KeepSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4,
                                           0.75));

} // namespace
} // namespace sofa
