#include <gtest/gtest.h>

#include <set>

#include "arch/rass.h"
#include "core/sads.h"
#include "model/workload.h"
#include "testutil.h"

namespace sofa {
namespace {

/** The Fig. 15 example: 4 queries over 8 keys. */
SelectionList
paperExample()
{
    return {
        {0, 1, 2, 3, 4, 5}, // q0
        {2, 3, 4, 5, 6, 7}, // q1
        {2, 3, 5, 6},       // q2
        {0, 1, 4, 7},       // q3
    };
}

TEST(Rass, PaperExampleReducesTraffic)
{
    auto sel = paperExample();
    auto naive = scheduleNaive(sel, 4);
    auto rass = scheduleRass(sel, 4);
    EXPECT_LT(rass.vectorLoads, naive.vectorLoads);
    // RASS reaches the floor on this example: 8 distinct keys.
    EXPECT_EQ(rass.vectorLoads, 2 * distinctKeyLoads(sel));
}

TEST(Rass, AllQueriesServed)
{
    auto sel = paperExample();
    auto rass = scheduleRass(sel, 4);
    std::set<int> loaded;
    for (const auto &phase : rass.phaseKeys)
        loaded.insert(phase.begin(), phase.end());
    for (const auto &s : sel)
        for (int key : s)
            EXPECT_TRUE(loaded.count(key)) << "key " << key;
}

TEST(Rass, PhasesRespectBufferCapacity)
{
    auto sel = paperExample();
    for (int cap : {1, 2, 4, 8}) {
        auto rass = scheduleRass(sel, cap);
        for (const auto &phase : rass.phaseKeys)
            EXPECT_LE(static_cast<int>(phase.size()), cap);
    }
}

TEST(Rass, NeverBelowDistinctFloor)
{
    Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        SelectionList sel(8);
        for (auto &s : sel) {
            const int n = static_cast<int>(rng.uniformInt(4, 20));
            std::set<int> keys;
            while (static_cast<int>(keys.size()) < n)
                keys.insert(
                    static_cast<int>(rng.uniformInt(0, 63)));
            s.assign(keys.begin(), keys.end());
        }
        auto rass = scheduleRass(sel, 8);
        auto naive = scheduleNaive(sel, 8);
        EXPECT_GE(rass.vectorLoads, 2 * distinctKeyLoads(sel));
        EXPECT_GE(naive.vectorLoads, 2 * distinctKeyLoads(sel));
        EXPECT_LE(rass.vectorLoads, naive.vectorLoads);
    }
}

TEST(Rass, RealisticSelectionsSaveMemory)
{
    // Selections from a real SADS run over overlapping top-k rows:
    // RASS should save a Fig. 20-scale fraction vs naive.
    WorkloadSpec spec;
    spec.seq = 512;
    spec.queries = 64;
    spec.mixture = {0.25, 0.75, 0.0};
    auto w = generateWorkload(spec);
    auto sads = sadsTopK(w.scores, 64, {});
    auto sel = sads.selections();

    auto naive = scheduleNaive(sel, 64);
    auto rass = scheduleRass(sel, 64);
    const double reduction =
        1.0 - static_cast<double>(rass.vectorLoads) /
                  static_cast<double>(naive.vectorLoads);
    EXPECT_GT(reduction, 0.10);
}

TEST(Rass, IdenticalSelectionsCollapse)
{
    // All queries want the same keys: RASS loads them once.
    SelectionList sel(16, Selection{1, 2, 3, 4});
    auto rass = scheduleRass(sel, 4);
    EXPECT_EQ(rass.vectorLoads, 8);
    EXPECT_EQ(rass.phases, 1);
}

TEST(Rass, DisjointSelectionsNoSavings)
{
    SelectionList sel = {{0, 1}, {2, 3}, {4, 5}};
    auto rass = scheduleRass(sel, 2);
    auto naive = scheduleNaive(sel, 2);
    EXPECT_EQ(rass.vectorLoads, 12);
    // With disjoint needs naive is also at the floor.
    EXPECT_EQ(naive.vectorLoads, 12);
}

TEST(Rass, EmptySelections)
{
    SelectionList sel(4);
    auto rass = scheduleRass(sel, 4);
    EXPECT_EQ(rass.vectorLoads, 0);
    EXPECT_EQ(rass.phases, 0);
    auto naive = scheduleNaive(sel, 4);
    EXPECT_EQ(naive.vectorLoads, 0);
}

TEST(Naive, SmallBufferThrashes)
{
    // Shrinking the buffer increases naive refetches.
    auto w = testutil::makeWorkload(256, 32, /*headDim=*/64,
                                    /*tokenDim=*/128);
    auto sads = sadsTopK(w.scores, 64, {});
    auto sel = sads.selections();
    auto big = scheduleNaive(sel, 256);
    auto small = scheduleNaive(sel, 4);
    EXPECT_GE(small.vectorLoads, big.vectorLoads);
}

TEST(ScheduleResult, BytesHelper)
{
    ScheduleResult r;
    r.vectorLoads = 10;
    EXPECT_DOUBLE_EQ(r.bytes(128.0), 1280.0);
}

} // namespace
} // namespace sofa
