#include <gtest/gtest.h>

#include "arch/accelerator.h"

namespace sofa {
namespace {

AttentionShape
llamaSlice()
{
    AttentionShape s;
    s.queries = 128;
    s.seq = 4096;
    s.headDim = 128;
    s.heads = 4;
    s.tokenDim = 128;
    return s;
}

TEST(Accelerator, RunsAndProducesPositiveMetrics)
{
    SofaAccelerator acc;
    auto res = acc.run(llamaSlice());
    EXPECT_GT(res.cycles, 0.0);
    EXPECT_GT(res.timeNs, 0.0);
    EXPECT_GT(res.energyPj, 0.0);
    EXPECT_GT(res.dramBytes, 0.0);
    EXPECT_GT(res.effectiveGops, 0.0);
    EXPECT_GT(res.gopsPerWatt, 0.0);
    EXPECT_GE(res.utilization, 0.0);
    EXPECT_LE(res.utilization, 1.0);
}

TEST(Accelerator, TiledPipelineFasterThanSerialized)
{
    SofaConfig tiled, serial;
    serial.features.tiledPipeline = false;
    SofaAccelerator a(tiled), b(serial);
    auto shape = llamaSlice();
    auto rt = a.run(shape);
    auto rs = b.run(shape);
    EXPECT_LT(rt.timeNs, rs.timeNs);
    EXPECT_LT(rt.dramBytes, rs.dramBytes);
}

TEST(Accelerator, RassCutsDramTraffic)
{
    SofaConfig with, without;
    without.features.rassScheduling = false;
    SofaAccelerator a(with), b(without);
    auto shape = llamaSlice();
    EXPECT_LT(a.run(shape).dramBytes, b.run(shape).dramBytes);
}

TEST(Accelerator, DlzsSavesEnergy)
{
    SofaConfig with, without;
    without.features.dlzsPrediction = false;
    SofaAccelerator a(with), b(without);
    auto shape = llamaSlice();
    EXPECT_LT(a.run(shape).energyPj, b.run(shape).energyPj);
}

TEST(Accelerator, SadsFasterThanVanillaSort)
{
    SofaConfig with, without;
    without.features.sadsSorting = false;
    SofaAccelerator a(with), b(without);
    auto shape = llamaSlice();
    EXPECT_LE(a.run(shape).timeNs, b.run(shape).timeNs);
}

TEST(Accelerator, SufaBeatsFa2Formal)
{
    SofaConfig with, without;
    without.features.sufaOrdering = false;
    SofaAccelerator a(with), b(without);
    auto shape = llamaSlice();
    EXPECT_LT(a.run(shape).energyPj, b.run(shape).energyPj);
}

TEST(Accelerator, SparsityReducesTime)
{
    SofaConfig dense_cfg, sparse_cfg;
    dense_cfg.topkFrac = 0.9;
    sparse_cfg.topkFrac = 0.1;
    SofaAccelerator d(dense_cfg), s(sparse_cfg);
    auto shape = llamaSlice();
    EXPECT_LT(s.run(shape).timeNs, d.run(shape).timeNs);
}

TEST(Accelerator, PeakGopsMatchesDatapath)
{
    SofaAccelerator acc;
    // (128x4 KV + 128x4 SU-FA) MACs * 2 ops * 1 GHz = 2048 GOPS.
    EXPECT_NEAR(acc.peakGops(), 2048.0, 1.0);
}

TEST(Accelerator, StatsPopulated)
{
    SofaAccelerator acc;
    auto res = acc.run(llamaSlice());
    EXPECT_TRUE(res.stats.has("cycles"));
    EXPECT_TRUE(res.stats.has("dram_bytes"));
    EXPECT_TRUE(res.stats.has("tiles"));
    EXPECT_GT(res.stats.get("kept_keys"), 0.0);
}

TEST(Accelerator, HeadsScaleLinearly)
{
    SofaAccelerator acc;
    auto one = llamaSlice();
    one.heads = 1;
    auto four = llamaSlice();
    four.heads = 4;
    auto r1 = acc.run(one);
    auto r4 = acc.run(four);
    EXPECT_NEAR(r4.cycles / r1.cycles, 4.0, 0.5);
}

TEST(Accelerator, EnergyEfficiencyBeatsNaive)
{
    // All features on vs all off: the full design must win on both
    // time and energy (the Fig. 21 claim).
    SofaConfig full, naive;
    naive.features = {false, false, false, false, false, false};
    SofaAccelerator a(full), b(naive);
    auto shape = llamaSlice();
    auto rf = a.run(shape);
    auto rn = b.run(shape);
    EXPECT_LT(rf.timeNs, rn.timeNs);
    EXPECT_GT(rf.gopsPerWatt, rn.gopsPerWatt);
}

} // namespace
} // namespace sofa
