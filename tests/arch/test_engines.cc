#include <gtest/gtest.h>

#include "arch/dlzs_engine.h"
#include "arch/kv_engine.h"
#include "arch/sads_engine.h"
#include "arch/sufa_engine.h"

namespace sofa {
namespace {

TEST(DlzsEngine, ThroughputMatchesArray)
{
    DlzsEngine e;
    EXPECT_DOUBLE_EQ(e.throughputPerCycle(), 128.0 * 32.0);
}

TEST(DlzsEngine, KPredictionScalesWithWork)
{
    DlzsEngine e;
    auto c1 = e.kPrediction(128, 128, 64);
    auto c2 = e.kPrediction(256, 128, 64);
    EXPECT_GT(c2.cycles, c1.cycles * 1.8);
    EXPECT_NEAR(c2.energyPj / c1.energyPj, 2.0, 0.01);
}

TEST(DlzsEngine, ZeroEliminationReducesCost)
{
    DlzsEngine e;
    auto dense = e.kPrediction(256, 128, 64, 0.0);
    auto sparse = e.kPrediction(256, 128, 64, 0.5);
    EXPECT_LT(sparse.cycles, dense.cycles);
    EXPECT_NEAR(sparse.energyPj / dense.energyPj, 0.5, 0.01);
}

TEST(DlzsEngine, APredictionIncludesLzePass)
{
    DlzsEngine e;
    auto c = e.aPrediction(128, 16, 64);
    // LZE pass alone: 128*64/128 = 64 cycles minimum.
    EXPECT_GT(c.cycles, 64.0);
}

TEST(SadsEngine, CyclesScaleWithRowsAboveLaneCount)
{
    SadsEngine e;
    auto c128 = e.sort(128, 1024, 4);
    auto c256 = e.sort(256, 1024, 4);
    EXPECT_NEAR(c256.cycles / c128.cycles, 2.0, 0.01);
}

TEST(SadsEngine, ParallelRowsFree)
{
    // 1 row and 128 rows take the same cycles (128 lanes).
    SadsEngine e;
    auto c1 = e.sort(1, 1024, 4);
    auto c128 = e.sort(128, 1024, 4);
    EXPECT_DOUBLE_EQ(c1.cycles, c128.cycles);
    // Energy still scales with rows.
    EXPECT_GT(c128.energyPj, c1.energyPj * 100);
}

TEST(SadsEngine, ClippingSavesEnergyAndCycles)
{
    SadsEngine e;
    auto open = e.sort(128, 4096, 4, 0.0);
    auto clipped = e.sort(128, 4096, 4, 0.6);
    EXPECT_LT(clipped.cycles, open.cycles);
    EXPECT_LT(clipped.energyPj, open.energyPj);
}

TEST(KvEngine, ThroughputAndScaling)
{
    KvEngine e;
    EXPECT_DOUBLE_EQ(e.throughputPerCycle(), 512.0);
    auto c1 = e.generate(64, 128, 64);
    auto c2 = e.generate(128, 128, 64);
    EXPECT_NEAR(c2.energyPj / c1.energyPj, 2.0, 0.01);
    EXPECT_GT(c2.cycles, c1.cycles);
}

TEST(KvEngine, ZeroKeysCheap)
{
    KvEngine e;
    auto c = e.generate(0, 128, 64);
    EXPECT_LT(c.cycles, 200.0); // only pipeline fill
    EXPECT_DOUBLE_EQ(c.energyPj, 0.0);
}

TEST(SufaEngine, DescendingCheaperThanAscending)
{
    SufaEngine e;
    auto d = e.attention(128, 512, 64, SufaOrder::Descending);
    auto a = e.attention(128, 512, 64, SufaOrder::Ascending);
    EXPECT_LT(d.energyPj, a.energyPj);
    EXPECT_LE(d.cycles, a.cycles);
}

TEST(SufaEngine, SufaCheaperThanFa2)
{
    SufaEngine e;
    auto sufa = e.attention(128, 512, 64, SufaOrder::Descending);
    auto fa2 = e.attentionFa2(128, 512, 64, 16);
    EXPECT_LT(sufa.energyPj, fa2.energyPj);
}

TEST(SufaEngine, ViolationsCostEnergy)
{
    SufaEngine e;
    auto clean = e.attention(128, 512, 64, SufaOrder::Descending,
                             0.0);
    auto noisy = e.attention(128, 512, 64, SufaOrder::Descending,
                             0.2);
    EXPECT_GT(noisy.energyPj, clean.energyPj);
}

TEST(SufaEngine, Fa2SmallerTilesCostMore)
{
    SufaEngine e;
    auto fine = e.attentionFa2(128, 512, 64, 4);
    auto coarse = e.attentionFa2(128, 512, 64, 64);
    EXPECT_GT(fine.energyPj, coarse.energyPj);
}

TEST(EngineCost, Accumulates)
{
    EngineCost a{10.0, 5.0}, b{1.0, 2.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 11.0);
    EXPECT_DOUBLE_EQ(a.energyPj, 7.0);
}

} // namespace
} // namespace sofa
