#include <gtest/gtest.h>

#include "arch/dram.h"

namespace sofa {
namespace {

TEST(DramConfig, Presets)
{
    EXPECT_NEAR(DramConfig::ddr4().bandwidthGBs, 25.6, 1e-9);
    EXPECT_GT(DramConfig::hbm2().bandwidthGBs, 100.0);
    EXPECT_NEAR(DramConfig::hbm2Sofa().bandwidthGBs, 59.8, 1e-9);
}

TEST(Dram, TransferTime)
{
    Dram d(DramConfig::ddr4());
    // 25.6 GB/s == 25.6 bytes/ns.
    EXPECT_NEAR(d.transferNs(256), 10.0, 1e-9);
}

TEST(Dram, TrafficAccounting)
{
    Dram d;
    d.read(1000);
    d.write(500);
    EXPECT_DOUBLE_EQ(d.bytesRead(), 1000.0);
    EXPECT_DOUBLE_EQ(d.bytesWritten(), 500.0);
    EXPECT_DOUBLE_EQ(d.totalBytes(), 1500.0);
}

TEST(Dram, EnergyPerBit)
{
    DramConfig cfg;
    cfg.energyPjPerBit = 10.0;
    Dram d(cfg);
    d.read(1); // 8 bits
    EXPECT_DOUBLE_EQ(d.energyPj(), 80.0);
}

TEST(Dram, DemandBandwidth)
{
    Dram d;
    d.read(500);
    d.write(500);
    // 1000 bytes over 100 ns = 10 GB/s.
    EXPECT_NEAR(d.demandGBs(100.0), 10.0, 1e-9);
}

TEST(Dram, ResetAndReport)
{
    Dram d;
    d.read(64);
    StatGroup g;
    d.report(g);
    EXPECT_DOUBLE_EQ(g.get("dram.bytes_read"), 64.0);
    d.reset();
    EXPECT_DOUBLE_EQ(d.totalBytes(), 0.0);
}

TEST(Dram, Ddr4SlowerThanHbm2)
{
    Dram ddr(DramConfig::ddr4()), hbm(DramConfig::hbm2());
    EXPECT_GT(ddr.transferNs(1 << 20), hbm.transferNs(1 << 20));
}

} // namespace
} // namespace sofa
