#include <gtest/gtest.h>

#include "arch/sram.h"

namespace sofa {
namespace {

TEST(Sram, CapacityCheck)
{
    Sram s("buf", 1024);
    EXPECT_TRUE(s.fits(1024));
    EXPECT_FALSE(s.fits(1025));
    EXPECT_EQ(s.capacity(), 1024);
}

TEST(Sram, TrafficAccounting)
{
    Sram s("buf", 1 << 20);
    s.read(100);
    s.write(50);
    s.read(10);
    EXPECT_DOUBLE_EQ(s.bytesRead(), 110.0);
    EXPECT_DOUBLE_EQ(s.bytesWritten(), 50.0);
    EXPECT_DOUBLE_EQ(s.totalBytes(), 160.0);
}

TEST(Sram, CyclesFromBandwidth)
{
    Sram s("buf", 1 << 20, 64.0);
    EXPECT_DOUBLE_EQ(s.read(640), 10.0);
    EXPECT_DOUBLE_EQ(s.write(64), 1.0);
}

TEST(Sram, EnergyLinearInTraffic)
{
    Sram s("buf", 1 << 20);
    s.read(1000);
    MemEnergies e = MemEnergies::defaults();
    const double e1 = s.energyPj(e);
    s.read(1000);
    EXPECT_NEAR(s.energyPj(e), 2.0 * e1, 1e-9);
}

TEST(Sram, ResetClearsTraffic)
{
    Sram s("buf", 1024);
    s.read(10);
    s.reset();
    EXPECT_DOUBLE_EQ(s.totalBytes(), 0.0);
}

TEST(Sram, ReportExportsCounters)
{
    Sram s("token", 1024);
    s.read(7);
    s.write(3);
    StatGroup g;
    s.report(g);
    EXPECT_DOUBLE_EQ(g.get("token.bytes_read"), 7.0);
    EXPECT_DOUBLE_EQ(g.get("token.bytes_written"), 3.0);
}

TEST(SramDeath, InvalidConfigPanics)
{
    EXPECT_DEATH(Sram("bad", 0), "assertion");
}

} // namespace
} // namespace sofa
