#include <gtest/gtest.h>

#include "arch/whole_row.h"

namespace sofa {
namespace {

WholeRowConfig
factLike()
{
    WholeRowConfig cfg;
    cfg.name = "FACT";
    cfg.throughputGops = 928.0;
    cfg.sramBytes = 2 << 20;
    return cfg;
}

TEST(WholeRow, LowParallelismFitsSram)
{
    // T=1 on BERT-like shapes: intermediates fit, no spill.
    auto res = runWholeRow(factLike(), 1, 512, 64, 16);
    EXPECT_DOUBLE_EQ(res.spillBytes, 0.0);
    EXPECT_LT(res.matRatio(), 0.5);
}

TEST(WholeRow, HighParallelismSpills)
{
    auto res = runWholeRow(factLike(), 512, 512, 64, 16);
    EXPECT_GT(res.spillBytes, 0.0);
}

TEST(WholeRow, MatRatioRisesWithParallelism)
{
    // Fig. 3: DRAM access share grows as parallelism scales.
    double prev = 0.0;
    for (std::int64_t t : {1, 32, 128, 512}) {
        auto res = runWholeRow(factLike(), t, 512, 64, 16);
        EXPECT_GE(res.matRatio(), prev - 1e-9) << "T=" << t;
        prev = res.matRatio();
    }
    EXPECT_GT(prev, 0.5); // memory becomes the bottleneck
}

TEST(WholeRow, MatDominatesAtPaperScale)
{
    // Fig. 3 reports ~72% average MAT at max parallelism.
    auto res = runWholeRow(factLike(), 512, 512, 64, 16);
    EXPECT_GT(res.matRatio(), 0.55);
    EXPECT_LT(res.matRatio(), 0.95);
}

TEST(WholeRow, BiggerSramDelaysSpill)
{
    WholeRowConfig small = factLike();
    small.sramBytes = 1 << 20;
    WholeRowConfig big = factLike();
    big.sramBytes = 8 << 20;
    auto rs = runWholeRow(small, 64, 512, 64, 16);
    auto rb = runWholeRow(big, 64, 512, 64, 16);
    EXPECT_GE(rs.spillBytes, rb.spillBytes);
}

TEST(WholeRow, ComputeScalesWithTotalWork)
{
    // Total work is the full S x S attention regardless of wave
    // size; compute time therefore scales with S^2, not with T.
    auto rt1 = runWholeRow(factLike(), 64, 512, 64, 16);
    auto rt2 = runWholeRow(factLike(), 128, 512, 64, 16);
    EXPECT_NEAR(rt2.computeNs / rt1.computeNs, 1.0, 0.01);

    auto rs1 = runWholeRow(factLike(), 64, 512, 64, 16);
    auto rs2 = runWholeRow(factLike(), 64, 1024, 64, 16);
    EXPECT_NEAR(rs2.computeNs / rs1.computeNs, 4.0, 0.1);
}

TEST(WholeRow, FasterDramLowersMat)
{
    WholeRowConfig slow = factLike();
    WholeRowConfig fast = factLike();
    fast.dram = DramConfig::hbm2();
    auto rs = runWholeRow(slow, 512, 512, 64, 16);
    auto rf = runWholeRow(fast, 512, 512, 64, 16);
    EXPECT_GT(rs.matRatio(), rf.matRatio());
}

} // namespace
} // namespace sofa
