#include <gtest/gtest.h>

#include "arch/controller.h"
#include "common/rng.h"

namespace sofa {
namespace {

StageCosts
uniformCosts(double c)
{
    StageCosts costs;
    costs.perTile = {c, c, c, c};
    return costs;
}

TEST(Controller, SerializedIsSumOfStages)
{
    TiledController ctrl(/*pipelined=*/false);
    auto trace = ctrl.schedule(10, uniformCosts(5.0));
    EXPECT_DOUBLE_EQ(trace.totalCycles, 4 * 10 * 5.0);
}

TEST(Controller, PipelinedApproachesMaxStage)
{
    // With uniform per-tile costs c and N tiles, the pipeline takes
    // (N + stages - 1) * c.
    TiledController ctrl(true);
    auto trace = ctrl.schedule(100, uniformCosts(2.0));
    EXPECT_DOUBLE_EQ(trace.totalCycles, (100 + 3) * 2.0);
}

TEST(Controller, PipelinedBoundedBySlowestStage)
{
    TiledController ctrl(true);
    StageCosts costs;
    costs.perTile = {1.0, 0.5, 8.0, 2.0};
    auto trace = ctrl.schedule(50, costs);
    // Steady state: slowest stage back to back.
    EXPECT_GE(trace.totalCycles, 50 * 8.0);
    EXPECT_LE(trace.totalCycles, 50 * 8.0 + 1.0 + 0.5 + 2.0 + 1e-9);
}

TEST(Controller, PipelineBeatsSerialization)
{
    StageCosts costs;
    costs.perTile = {3.0, 1.0, 2.0, 4.0};
    auto piped = TiledController(true).schedule(64, costs);
    auto serial = TiledController(false).schedule(64, costs);
    EXPECT_LT(piped.totalCycles, serial.totalCycles);
}

TEST(Controller, RowBarrierDelaysSort)
{
    StageCosts costs;
    costs.perTile = {2.0, 1.0, 1.0, 1.0};
    auto free = TiledController(true, false).schedule(32, costs);
    auto barred = TiledController(true, true).schedule(32, costs);
    EXPECT_GT(barred.totalCycles, free.totalCycles);
    // Sort of tile 0 starts only after prediction drains all tiles.
    auto tile0 = barred.tileEvents(0);
    EXPECT_GE(tile0[static_cast<int>(Stage::Sort)].startCycle,
              32 * 2.0 - 1e-9);
}

TEST(Controller, EventsRespectDependencies)
{
    StageCosts costs;
    costs.perTile = {1.5, 2.5, 0.5, 3.0};
    auto trace = TiledController(true).schedule(16, costs);
    for (int t = 0; t < 16; ++t) {
        auto ev = trace.tileEvents(t);
        ASSERT_EQ(ev.size(), 4u);
        for (int s = 1; s < kNumStages; ++s) {
            EXPECT_GE(ev[s].startCycle, ev[s - 1].endCycle - 1e-9)
                << "tile " << t << " stage " << s;
        }
    }
}

TEST(Controller, SameStageNeverOverlapsItself)
{
    StageCosts costs;
    costs.perTile = {1.0, 4.0, 2.0, 1.0};
    auto trace = TiledController(true).schedule(20, costs);
    for (int s = 0; s < kNumStages; ++s) {
        double last_end = -1.0;
        for (const auto &e : trace.events) {
            if (static_cast<int>(e.stage) != s)
                continue;
            EXPECT_GE(e.startCycle, last_end - 1e-9);
            last_end = e.endCycle;
        }
    }
}

TEST(Controller, UtilizationOfBottleneckNearOne)
{
    StageCosts costs;
    costs.perTile = {1.0, 1.0, 10.0, 1.0};
    auto trace = TiledController(true).schedule(200, costs);
    EXPECT_GT(trace.utilization(Stage::KvGen), 0.97);
    EXPECT_LT(trace.utilization(Stage::Predict), 0.15);
}

TEST(Controller, BusyAccounting)
{
    auto trace = TiledController(true).schedule(10, uniformCosts(3.0));
    for (int s = 0; s < kNumStages; ++s)
        EXPECT_DOUBLE_EQ(trace.stageBusy[s], 30.0);
}

TEST(Controller, GanttRendersAllStages)
{
    auto trace = TiledController(true).schedule(8, uniformCosts(1.0));
    auto g = trace.gantt(32);
    EXPECT_NE(g.find("predict"), std::string::npos);
    EXPECT_NE(g.find("formal"), std::string::npos);
    EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Controller, StageNames)
{
    EXPECT_STREQ(stageName(Stage::Predict), "predict");
    EXPECT_STREQ(stageName(Stage::Sort), "sort");
    EXPECT_STREQ(stageName(Stage::KvGen), "kvgen");
    EXPECT_STREQ(stageName(Stage::Formal), "formal");
}

TEST(ControllerDeath, ZeroTilesPanics)
{
    TiledController ctrl;
    EXPECT_DEATH(ctrl.schedule(0, uniformCosts(1.0)), "assertion");
}

/** Cross-validation against the closed-form used by accelerator.cc:
 * max_stage_total + (sum - max)/tiles. */
class ControllerClosedForm
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ControllerClosedForm, MatchesWithinFill)
{
    auto [tiles, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    StageCosts costs;
    double total[4];
    double max_total = 0.0, sum_total = 0.0;
    for (int s = 0; s < kNumStages; ++s) {
        costs.perTile[s] = rng.uniform(0.5, 8.0);
        total[s] = costs.perTile[s] * tiles;
        max_total = std::max(max_total, total[s]);
        sum_total += total[s];
    }
    const double closed =
        max_total + (sum_total - max_total) / tiles;
    auto trace = TiledController(true).schedule(tiles, costs);
    EXPECT_NEAR(trace.totalCycles, closed, closed * 0.02 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ControllerClosedForm,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(1, 2, 3, 4)));

} // namespace
} // namespace sofa
