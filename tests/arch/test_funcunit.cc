#include <gtest/gtest.h>

#include <cmath>

#include "arch/funcunit.h"
#include "common/rng.h"

namespace sofa {
namespace {

TEST(ExpUnit, ExactAtSegmentBoundaries)
{
    // Integer inputs hit x*log2(e) exactly only at 0; check the
    // identity point.
    ExpUnit u;
    EXPECT_NEAR(u.compute(0.0), 1.0, 1e-12);
}

TEST(ExpUnit, PositiveInputsClampToOne)
{
    ExpUnit u;
    EXPECT_NEAR(u.compute(3.0), 1.0, 1e-12);
}

TEST(ExpUnit, UnderflowsToZero)
{
    ExpUnit u;
    EXPECT_DOUBLE_EQ(u.compute(-60.0), 0.0);
}

TEST(ExpUnit, MonotoneNonDecreasing)
{
    ExpUnit u;
    double prev = 0.0;
    for (double x = -20.0; x <= 0.0; x += 0.01) {
        const double v = u.compute(x);
        EXPECT_GE(v, prev - 1e-15) << "x=" << x;
        prev = v;
    }
}

TEST(ExpUnit, ErrorBoundedBySegmentCount)
{
    // Piecewise-linear interpolation of 2^f: error shrinks ~4x per
    // segment doubling.
    ExpUnit coarse(8), fine(32);
    const double ec = coarse.maxRelativeError();
    const double ef = fine.maxRelativeError();
    EXPECT_LT(ec, 0.01);
    EXPECT_LT(ef, ec / 8.0);
}

TEST(ExpUnit, SixteenSegmentsGoodForInt16Softmax)
{
    // The 128 EXP units run a 16-segment LUT: error must sit below
    // the int16 quantization floor (~3e-5).
    ExpUnit u(16);
    EXPECT_LT(u.maxRelativeError(), 1e-3);
}

TEST(DivUnit, ReciprocalAccuracy)
{
    DivUnit one(1), two(2);
    EXPECT_LT(one.maxRelativeError(), 1e-2);
    EXPECT_LT(two.maxRelativeError(), 1e-4);
    // Each Newton step squares the error.
    EXPECT_LT(two.maxRelativeError(),
              one.maxRelativeError() * one.maxRelativeError() * 4.0);
}

TEST(DivUnit, DivideMatchesRatio)
{
    DivUnit u(2);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-10.0, 10.0);
        const double b = rng.uniform(0.01, 100.0);
        EXPECT_NEAR(u.divide(a, b), a / b,
                    std::fabs(a / b) * 2e-4 + 1e-12);
    }
}

TEST(DivUnit, PowerOfTwoNearExact)
{
    // Powers of two only exercise the exponent path; the residual is
    // the Newton error at mantissa 0.5 (~2e-5 after two steps).
    DivUnit u(2);
    for (double x : {0.25, 0.5, 1.0, 2.0, 1024.0})
        EXPECT_NEAR(u.reciprocal(x) * x, 1.0, 1e-4);
}

TEST(DivUnitDeath, NonPositivePanics)
{
    DivUnit u;
    EXPECT_DEATH(u.reciprocal(0.0), "assertion");
    EXPECT_DEATH(u.reciprocal(-1.0), "assertion");
}

TEST(FuncUnit, LatencyAccounting)
{
    EXPECT_EQ(ExpUnit(16, 2).latencyCycles(), 2);
    EXPECT_EQ(DivUnit(2, 3).latencyCycles(), 6);
}

TEST(HardwareSoftmax, ErrorBelowQuantizationFloor)
{
    // A realistic score row through the hardware units: probability
    // error must be negligible against the 16-bit datapath.
    Rng rng(7);
    std::vector<float> scores(512);
    for (auto &s : scores)
        s = static_cast<float>(rng.gaussian(0.0, 2.0));
    scores[37] = 9.0f; // a dominant

    ExpUnit e(16);
    DivUnit d(2);
    const double err = hardwareSoftmaxError(
        e, d, scores.data(), static_cast<int>(scores.size()));
    EXPECT_LT(err, 5e-4);
}

TEST(HardwareSoftmax, SingleElementNearExact)
{
    // exp(0) is exact; the residual is the Newton reciprocal's
    // ~1e-5 error at 1.0.
    ExpUnit e;
    DivUnit d;
    float one = 3.3f;
    EXPECT_NEAR(hardwareSoftmaxError(e, d, &one, 1), 0.0, 1e-4);
}

/** Sweep: error scales down with LUT size across row shapes. */
class SoftmaxHwSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SoftmaxHwSweep, ErrorShrinksWithSegments)
{
    Rng rng(11);
    std::vector<float> scores(256);
    for (auto &s : scores)
        s = static_cast<float>(rng.gaussian(0.0, 3.0));
    DivUnit d(2);
    const double coarse = hardwareSoftmaxError(
        ExpUnit(4), d, scores.data(), GetParam());
    const double fine = hardwareSoftmaxError(
        ExpUnit(64), d, scores.data(), GetParam());
    EXPECT_LE(fine, coarse + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RowLengths, SoftmaxHwSweep,
                         ::testing::Values(16, 64, 256));

} // namespace
} // namespace sofa
