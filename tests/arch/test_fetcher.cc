#include <gtest/gtest.h>

#include "arch/fetcher.h"
#include "common/rng.h"

namespace sofa {
namespace {

DataFetcher
makeFetcher(int banks = 8, int width = 16,
            std::int64_t cap = 64 * 1024)
{
    return DataFetcher(banks, width, cap);
}

TEST(Fetcher, AllocationLaysOutSequentially)
{
    auto f = makeFetcher();
    auto a = f.allocate("a", 4, 32);
    auto b = f.allocate("b", 2, 64);
    EXPECT_EQ(a.baseAddr, 0);
    EXPECT_EQ(a.bytes(), 128);
    EXPECT_GE(b.baseAddr, a.bytes());
    EXPECT_EQ(f.allocatedBytes(), a.baseAddr + 128 + 128);
}

TEST(Fetcher, RowAddressing)
{
    auto f = makeFetcher();
    auto t = f.allocate("t", 8, 32);
    EXPECT_EQ(t.rowAddr(0), t.baseAddr);
    EXPECT_EQ(t.rowAddr(3), t.baseAddr + 3 * 32);
}

TEST(FetcherDeath, RowOutOfRange)
{
    auto f = makeFetcher();
    auto t = f.allocate("t", 8, 32);
    EXPECT_DEATH(t.rowAddr(8), "assertion");
}

TEST(FetcherDeath, OverCapacityIsFatal)
{
    auto f = makeFetcher(8, 16, 1024);
    EXPECT_EXIT(f.allocate("huge", 1024, 1024),
                ::testing::ExitedWithCode(1), "exceeds");
}

TEST(Fetcher, ResetReclaims)
{
    auto f = makeFetcher(8, 16, 1024);
    f.allocate("a", 8, 64);
    f.reset();
    EXPECT_EQ(f.allocatedBytes(), 0);
    auto b = f.allocate("b", 8, 64);
    EXPECT_EQ(b.baseAddr, 0);
}

TEST(Fetcher, BankInterleaving)
{
    auto f = makeFetcher(4, 16, 4096);
    EXPECT_EQ(f.bankOf(0), 0);
    EXPECT_EQ(f.bankOf(16), 1);
    EXPECT_EQ(f.bankOf(48), 3);
    EXPECT_EQ(f.bankOf(64), 0); // wraps
}

TEST(Fetcher, DenseTileSpreadsAcrossBanks)
{
    // Rows of one bank-width each land on consecutive banks: a tile
    // of `banks` rows is conflict-free.
    auto f = makeFetcher(8, 16, 4096);
    auto t = f.allocate("t", 64, 16);
    auto reqs = f.tileRequests(t, 0, 8);
    ASSERT_EQ(reqs.size(), 8u);
    std::vector<bool> seen(8, false);
    for (const auto &r : reqs) {
        EXPECT_FALSE(seen[r.bank]);
        seen[r.bank] = true;
    }
    auto res = f.issue(reqs);
    EXPECT_EQ(res.conflicts, 0);
    EXPECT_EQ(res.cycles, 1);
}

TEST(Fetcher, GatherConflictsSerialize)
{
    auto f = makeFetcher(8, 16, 4096);
    auto t = f.allocate("t", 64, 16);
    // All gathered rows hit the same bank (stride = banks).
    std::vector<int> rows = {0, 8, 16, 24};
    auto reqs = f.gatherRequests(t, rows);
    for (const auto &r : reqs)
        EXPECT_EQ(r.bank, reqs[0].bank);
    auto res = f.issue(reqs);
    EXPECT_EQ(res.cycles, 4);
    EXPECT_GT(res.conflicts, 0);
}

TEST(Fetcher, WideRowsOccupyMultipleCycles)
{
    auto f = makeFetcher(4, 16, 4096);
    auto t = f.allocate("t", 8, 64); // 4 bank-widths per row
    auto res = f.issue(f.tileRequests(t, 0, 1));
    EXPECT_EQ(res.cycles, 4);
    EXPECT_EQ(res.bytes, 64);
}

TEST(Fetcher, StatsAccumulate)
{
    auto f = makeFetcher(8, 16, 4096);
    auto t = f.allocate("t", 32, 16);
    f.issue(f.tileRequests(t, 0, 8));
    f.issue(f.tileRequests(t, 8, 8));
    EXPECT_DOUBLE_EQ(f.stats().get("requests"), 16.0);
    EXPECT_DOUBLE_EQ(f.stats().get("bytes"), 256.0);
}

TEST(Fetcher, EmptyIssueIsFree)
{
    auto f = makeFetcher();
    auto res = f.issue({});
    EXPECT_EQ(res.cycles, 0);
    EXPECT_EQ(res.bytes, 0);
}

/** Property: conflicts never make a batch faster than the busiest
 * bank, and never slower than fully serialized. */
class FetcherProperty : public ::testing::TestWithParam<int>
{};

TEST_P(FetcherProperty, CycleBounds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto f = makeFetcher(8, 16, 1 << 20);
    auto t = f.allocate("t", 512, 16);
    std::vector<int> rows;
    for (int i = 0; i < 64; ++i)
        rows.push_back(static_cast<int>(rng.uniformInt(0, 511)));
    auto reqs = f.gatherRequests(t, rows);
    auto res = f.issue(reqs);
    EXPECT_GE(res.cycles, (64 + 7) / 8); // ideal
    EXPECT_LE(res.cycles, 64);           // fully serialized
    EXPECT_EQ(res.bytes, 64 * 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FetcherProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace sofa
