/**
 * @file
 * DSE demo: run Algorithm 1 (Bayesian optimization over per-layer
 * tile counts and top-k) with the objective backed by real pipeline
 * measurements on a small workload, and show the accuracy/complexity
 * trade-off the chosen configuration strikes.
 */

#include <cstdio>

#include "core/dse.h"
#include "core/pipeline.h"
#include "model/workload.h"

using namespace sofa;

int
main()
{
    // Small 4-layer model so each objective evaluation runs a real
    // pipeline per layer in milliseconds.
    DseSpace space;
    space.layers = 4;

    // One workload per layer (layers see different distributions).
    std::vector<AttentionWorkload> layers;
    for (int l = 0; l < space.layers; ++l) {
        WorkloadSpec spec;
        spec.seq = 256;
        spec.queries = 16;
        spec.headDim = 32;
        spec.tokenDim = 48;
        spec.mixture = l % 2 ? DistMixture{0.3, 0.7, 0.0}
                             : DistMixture{0.1, 0.9, 0.0};
        spec.seed = 0xD5E0 + l;
        layers.push_back(generateWorkload(spec));
    }

    auto evaluate = [&](const DsePoint &p) {
        DseEvaluation e;
        double loss = 0.0;
        for (int l = 0; l < space.layers; ++l) {
            PipelineConfig cfg;
            cfg.topkFrac = p.topkFrac;
            cfg.sads.segments = p.tcPerLayer[l];
            auto res = runSofaPipeline(layers[l], cfg);
            loss += res.accuracyLossPct / 100.0;
        }
        e.len = loss / space.layers;
        e.lcmp = analyticLcmp(p, 256);
        e.lexp = analyticLexp(p, 256);
        return e;
    };

    DseObjectiveWeights weights{0.24, 0.31};
    std::printf("Running Bayesian DSE (4 layers, %0.0e configs)...\n",
                space.totalConfigurations());
    auto res = bayesianSearch(space, weights, evaluate,
                              /*iterations=*/30, /*init=*/6,
                              /*candidates=*/128, /*seed=*/3);

    std::printf("\nBest objective: %.4f after %lld evaluations\n",
                res.bestObjective,
                static_cast<long long>(res.evaluations));
    std::printf("Chosen top-k: %.0f%%, segments per layer:",
                100.0 * res.best.topkFrac);
    for (int tc : res.best.tcPerLayer)
        std::printf(" %d", tc);
    std::printf("\nLen=%.4f  Lcmp=%.4f  Lexp=%.4f\n",
                res.bestEval.len, res.bestEval.lcmp,
                res.bestEval.lexp);

    std::printf("\nConvergence (best-so-far):\n");
    for (std::size_t i = 0; i < res.history.size(); i += 6)
        std::printf("  eval %2zu: %.4f\n", i, res.history[i]);
    return 0;
}
