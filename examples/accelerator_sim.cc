/**
 * @file
 * Accelerator simulation demo: run the cycle-level SOFA simulator on
 * a sweep of sequence lengths, dump the per-stage statistics, and
 * demonstrate the ablation flags (turning each mechanism off).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "energy/area_model.h"

using namespace sofa;

int
main()
{
    std::printf("=== SOFA accelerator simulator ===\n");
    SofaAreaModel area;
    std::printf("Core: %.2f mm2, %.0f mW @ 28nm 1GHz; peak %.0f "
                "GOPS\n\n", area.totalAreaMm2(), area.totalPowerMw(),
                SofaAccelerator{}.peakGops());

    std::printf("--- sequence-length sweep (T=128, d=64, 8 heads, "
                "keep 20%%) ---\n");
    std::printf("%8s | %10s %10s %10s %10s %8s\n", "S", "cycles",
                "time(us)", "GOPS", "DRAM(MB)", "util");
    SofaAccelerator acc;
    for (std::int64_t s : {512, 1024, 2048, 4096, 8192}) {
        AttentionShape shape;
        shape.queries = 128;
        shape.seq = s;
        shape.headDim = 64;
        shape.heads = 8;
        auto r = acc.run(shape);
        std::printf("%8lld | %10.0f %10.2f %10.0f %10.2f %7.0f%%\n",
                    static_cast<long long>(s), r.cycles,
                    r.timeNs / 1e3, r.effectiveGops,
                    r.dramBytes / 1e6, 100.0 * r.utilization);
    }

    std::printf("\n--- ablation flags (S=4096) ---\n");
    AttentionShape shape;
    shape.queries = 128;
    shape.seq = 4096;
    shape.headDim = 64;
    shape.heads = 8;
    auto full = acc.run(shape);
    struct Abl { const char *label; SofaFeatures f; };
    SofaFeatures all_on;
    std::vector<Abl> ablations = {
        {"full SOFA", all_on},
        {"- DLZS", [] { auto f = SofaFeatures{}; f.dlzsPrediction =
                            false; return f; }()},
        {"- SADS", [] { auto f = SofaFeatures{}; f.sadsSorting =
                            false; return f; }()},
        {"- SU-FA", [] { auto f = SofaFeatures{}; f.sufaOrdering =
                             false; return f; }()},
        {"- RASS", [] { auto f = SofaFeatures{}; f.rassScheduling =
                            false; return f; }()},
        {"- tiled pipeline", [] { auto f = SofaFeatures{};
                                  f.tiledPipeline = false;
                                  return f; }()},
        {"- on-demand KV", [] { auto f = SofaFeatures{};
                                f.onDemandKv = false; return f; }()},
    };
    std::printf("%-18s | %10s %12s %10s\n", "config", "time(us)",
                "energy(uJ)", "DRAM(MB)");
    for (const auto &a : ablations) {
        SofaConfig cfg;
        cfg.features = a.f;
        SofaAccelerator v(cfg);
        auto r = v.run(shape);
        std::printf("%-18s | %10.2f %12.2f %10.2f\n", a.label,
                    r.timeNs / 1e3,
                    (r.energyPj + r.dramEnergyPj) / 1e6,
                    r.dramBytes / 1e6);
    }

    std::printf("\n--- full stat dump (S=4096, full SOFA) ---\n%s",
                full.stats.toString().c_str());
    return 0;
}
