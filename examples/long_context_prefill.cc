/**
 * @file
 * Long-context prefill demo: the LTPP scenario the paper motivates.
 * A Llama-7B attention slice at 4k context with 512 parallel queries
 * is run through (a) the A100 GPU model in four software modes and
 * (b) the SOFA accelerator simulator, printing latency, throughput
 * and energy efficiency side by side.
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "baselines/tpu.h"
#include "common/threadpool.h"
#include "core/engine.h"
#include "model/config.h"
#include "model/workload.h"

using namespace sofa;

int
main()
{
    auto llama = models::llama7b();
    AttentionShape shape;
    shape.queries = 512;
    shape.seq = 4096;
    shape.headDim = llama.headDim();
    shape.heads = llama.heads;
    shape.tokenDim = 128;

    // Find the 2%-loss keep fraction on a calibrated workload.
    WorkloadSpec spec;
    spec.seq = 1024;
    spec.queries = 32;
    spec.headDim = shape.headDim;
    spec.mixture = llama.mixture;
    auto w = generateWorkload(spec);
    PipelineConfig pcfg;
    const double keep =
        std::max(0.05, minimalKeepFraction(w, pcfg, 2.0));

    // Cross-check the operating point on a batched multi-head slice
    // through the stage engine: the calibrated keep fraction must
    // hold per head, not just on the calibration head.
    ModelWorkloadSpec mspec;
    mspec.batch = 1;
    mspec.heads = 4;
    mspec.seq = 512;
    mspec.queries = 64;
    mspec.headDim = shape.headDim;
    mspec.mixture = llama.mixture;
    EngineConfig ecfg;
    ecfg.pipeline = pcfg;
    ecfg.pipeline.topkFrac = keep;
    const EngineResult er =
        runEngine(generateModelWorkload(mspec), ecfg);

    std::printf("Long-context prefill: Llama-7B attention, S=4096, "
                "T=512, %d heads, keep=%.0f%% (2%% loss)\n",
                shape.heads, 100.0 * keep);
    // The actual pool size (not a hard-coded count): matches the
    // top-level "threads" field of the BENCH_*.json artifacts.
    std::printf("thread pool: %d thread(s) (SOFA_NUM_THREADS to "
                "override)\n", ThreadPool::instance().threads());
    std::printf("engine check (%d heads, S=%d): mean loss %.2f%%, "
                "mass recall %.3f, %lld keys on demand\n\n",
                mspec.heads, mspec.seq, er.meanAccuracyLossPct,
                er.meanMassRecall,
                static_cast<long long>(er.keysGenerated));
    std::printf("%-22s | %12s %12s %12s\n", "Platform", "latency(us)",
                "GOPS", "GOPS/W");

    GpuModel gpu;
    TpuModel tpu;
    struct ModeRow { const char *label; GpuMode mode; };
    for (auto [label, mode] :
         {ModeRow{"A100 dense", GpuMode::Dense},
          ModeRow{"A100 LP", GpuMode::LP},
          ModeRow{"A100 LP+FA2", GpuMode::LPFlash2},
          ModeRow{"A100 SOFA-software", GpuMode::SofaSoft}}) {
        auto r = gpu.run(shape, mode, keep);
        std::printf("%-22s | %12.1f %12.0f %12.1f\n", label,
                    r.timeNs / 1e3, r.effectiveGops, r.gopsPerWatt);
    }
    {
        auto r = tpu.run(shape, GpuMode::Dense, keep);
        std::printf("%-22s | %12.1f %12.0f %12.1f\n", "TPU dense",
                    r.timeNs / 1e3, r.effectiveGops, r.gopsPerWatt);
    }

    SofaConfig cfg;
    cfg.topkFrac = keep;
    SofaAccelerator acc(cfg);
    auto r = acc.run(shape);
    std::printf("%-22s | %12.1f %12.0f %12.1f\n", "SOFA accelerator",
                r.timeNs / 1e3, r.effectiveGops, r.gopsPerWatt);

    auto dense = gpu.run(shape, GpuMode::Dense, keep);
    std::printf("\nSOFA vs A100 dense: %.1fx faster, %.1fx more "
                "energy efficient\n", dense.timeNs / r.timeNs,
                r.gopsPerWatt / dense.gopsPerWatt);
    std::printf("DRAM traffic: %.1f MB, PE utilization: %.0f%%\n",
                r.dramBytes / 1e6, 100.0 * r.utilization);
    return 0;
}
