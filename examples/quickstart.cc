/**
 * @file
 * Quickstart: run the full SOFA pipeline (DLZS prediction -> SADS
 * top-k -> on-demand KV -> SU-FA) on a synthetic attention workload
 * and print quality + cost next to the dense reference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "attention/reference.h"
#include "core/pipeline.h"
#include "model/workload.h"

using namespace sofa;

int
main()
{
    // 1. Describe a workload: 1024-token context, 64 queries in
    //    parallel, GPT-2-like score distribution.
    WorkloadSpec spec;
    spec.seq = 1024;
    spec.queries = 64;
    spec.headDim = 64;
    spec.tokenDim = 128;
    spec.mixture = {0.25, 0.74, 0.01};
    AttentionWorkload w = generateWorkload(spec);

    // 2. Configure the pipeline: keep 15% of Q-K pairs, 4-way SADS.
    PipelineConfig cfg;
    cfg.topkFrac = 0.15;
    cfg.sads.segments = 4;

    // 3. Run SOFA.
    PipelineResult res = runSofaPipeline(w, cfg);

    // 4. Compare against dense attention.
    AttentionResult dense = referenceAttention(w.q, w.k, w.v);

    std::printf("SOFA quickstart (S=%d, T=%d, d=%d, keep=%.0f%%)\n",
                spec.seq, spec.queries, spec.headDim,
                100.0 * cfg.topkFrac);
    std::printf("  top-k recall          : %.1f%%\n",
                100.0 * res.topkRecall);
    std::printf("  softmax mass covered  : %.2f%%\n",
                100.0 * res.massRecall);
    std::printf("  accuracy-loss proxy   : %.2f%%\n",
                res.accuracyLossPct);
    std::printf("  output relative error : %.4f\n",
                res.outputRelError);
    std::printf("  keys generated        : %lld of %d (on-demand)\n",
                static_cast<long long>(res.keysGenerated), spec.seq);
    std::printf("  max-ensure fallbacks  : %lld\n",
                static_cast<long long>(res.maxViolations));

    // Like-for-like complexity: the dense side must also generate
    // every K/V row (SOFA's formalOps includes its on-demand subset).
    OpCounter dense_total = dense.ops;
    dense_total.mulN(2LL * spec.seq * spec.tokenDim * spec.headDim);
    dense_total.addN(2LL * spec.seq * spec.tokenDim *
                     (spec.headDim - 1));
    const double sofa_cost = res.totalOps().normalized();
    const double dense_cost = dense_total.normalized();
    std::printf("  end-to-end complexity : %.3g vs dense %.3g "
                "(%.2fx less, incl. prediction overhead)\n",
                sofa_cost, dense_cost, dense_cost / sofa_cost);
    std::printf("  formal-stage only     : %.3g vs dense attention "
                "%.3g (%.1fx less)\n",
                res.formalOps.normalized(), dense.ops.normalized(),
                dense.ops.normalized() /
                    res.formalOps.normalized());
    std::printf("  prediction multiplies : %lld (multiplier-free)\n",
                static_cast<long long>(res.predictionOps.muls()));
    return 0;
}
