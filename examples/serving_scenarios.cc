/**
 * @file
 * LLM serving scenarios: where large-scale token parallel processing
 * (LTPP) comes from — prefill, disaggregated prefill servers, and
 * speculative decoding (Section I of the paper) — and how the SOFA
 * accelerator compares to the A100 model in each regime. Low-
 * parallelism decode is included to show where dynamic sparsity's
 * prediction overhead stops paying off.
 *
 * Three levels of fidelity side by side: the analytic arch/ models
 * at full scenario scale (latency, speedup), the value-level stage
 * engine (core/engine) executing each regime at functional scale —
 * batched multi-head, with KV-cache decode modes — to show the
 * op-level shape of each regime (keys generated vs cached, formal
 * ops per query row), and a closed-loop run of the asynchronous
 * serving scheduler (serve/scheduler) mixing all four regimes in
 * one continuously batched request stream.
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/engine.h"
#include "model/scenarios.h"
#include "serve/scheduler.h"

using namespace sofa;

int
main()
{
    const auto model = models::llama7b();
    // The actual pool size (not a hard-coded count): matches the
    // top-level "threads" field of the BENCH_*.json artifacts.
    std::printf("thread pool: %d thread(s) (SOFA_NUM_THREADS to "
                "override)\n\n", ThreadPool::instance().threads());
    GpuModel gpu;
    SofaConfig cfg;
    cfg.topkFrac = 0.1;
    SofaAccelerator acc(cfg);

    Table t;
    t.column("scenario", Align::Left)
        .column("mode", Align::Left)
        .column("T")
        .column("S")
        .column("GPU us")
        .column("SOFA us")
        .column("speedup")
        .column("tok/s (SOFA)");

    for (const auto &s : servingSuite(model)) {
        AttentionShape shape;
        shape.queries = s.tokenParallelism();
        shape.seq = static_cast<int>(s.contextLength());
        shape.headDim = model.headDim();
        shape.heads = model.heads;

        const double gpu_ns =
            gpu.run(shape, GpuMode::Dense).timeNs;
        const double sofa_ns = acc.run(shape).timeNs;
        // Whole-model step time ~ layers x attention slice (the
        // dominant term at long context); tokens/s from the
        // scenario's production per step.
        const double step_s =
            sofa_ns * model.layers * 1e-9;
        const double tok_s = s.tokensProduced() / step_s;

        t.row()
            .cell(s.name)
            .cell(servingModeName(s.mode))
            .cell(static_cast<std::int64_t>(s.tokenParallelism()))
            .cell(static_cast<std::int64_t>(s.contextLength()))
            .cell(gpu_ns / 1e3, 1)
            .cell(sofa_ns / 1e3, 1)
            .cell(gpu_ns / sofa_ns, 2)
            .cell(tok_s, 0);
    }

    std::printf("LTPP serving scenarios — Llama-7B attention "
                "(keep 10%%)\n\n%s", t.render().c_str());

    // Functional engine pass: one representative scenario per mode,
    // executed value-level (batch x heads, shared tokens per item,
    // KV-cache decode where the regime implies one).
    EngineConfig ecfg;
    ecfg.pipeline.topkFrac = 0.1;
    ecfg.computeQuality = false; // op shape, not accuracy, here

    Table ft;
    ft.column("mode", Align::Left)
        .column("B")
        .column("H")
        .column("T")
        .column("S")
        .column("keys gen")
        .column("keys cached")
        .column("formal Mops/row")
        .column("predict share");
    for (const auto &s : representativeScenarios(model)) {
        ModelWorkloadSpec spec =
            scenarioWorkloadSpec(s, /*max_context=*/256,
                                 /*max_batch=*/2, /*max_heads=*/2);
        spec.mixture = model.mixture;
        const ModelWorkload mw = generateModelWorkload(spec);
        const EngineResult r = runEngine(mw, ecfg);
        const double rows = static_cast<double>(spec.batch) *
                            spec.heads * spec.queryRows();
        const double predict_share =
            r.predictionOps.normalized() /
            r.totalOps().normalized();
        ft.row()
            .cell(servingModeName(s.mode))
            .cell(static_cast<std::int64_t>(spec.batch))
            .cell(static_cast<std::int64_t>(spec.heads))
            .cell(static_cast<std::int64_t>(spec.queryRows()))
            .cell(static_cast<std::int64_t>(spec.contextLen()))
            .cell(r.keysGenerated)
            .cell(r.keysCached)
            .cell(r.formalOps.normalized() / rows / 1e6, 3)
            .cell(predict_share, 3);
    }
    std::printf("\nFunctional stage engine at reduced scale "
                "(keep 10%%)\n\n%s", ft.render().c_str());

    // Closed-loop scheduler demo: the same four regimes as one mixed
    // request stream through serve/Scheduler — admission, continuous
    // batch formation, and per-request latency breakdown.
    serve::SchedulerConfig scfg;
    scfg.engine = ecfg;
    scfg.lanes = 2;
    scfg.headBudget = 8;
    const std::vector<serve::Request> trace = serve::mixedTrace(
        representativeScenarios(model), 8, ArrivalPattern::Poisson,
        1e-3, 0x50FADE40ull, /*max_context=*/128, /*max_batch=*/1,
        /*max_heads=*/2);
    serve::Scheduler sched(scfg);
    const std::vector<serve::RequestResult> results =
        runClosedLoop(sched, trace, /*window=*/4);
    const serve::SchedulerStats st = sched.stats();

    Table rt;
    rt.column("req", Align::Left)
        .column("kind", Align::Left)
        .column("queue ms")
        .column("service ms")
        .column("co-heads")
        .column("keys gen")
        .column("Mop");
    for (const auto &r : results) {
        rt.row()
            .cell(static_cast<std::int64_t>(r.id))
            .cell(serve::requestKindName(r.kind))
            .cell(1e3 * r.queueSeconds, 2)
            .cell(1e3 * r.serviceSeconds, 2)
            .cell(static_cast<std::int64_t>(r.coscheduledHeads))
            .cell(r.engine.keysGenerated)
            .cell(r.engine.totalOps().normalized() / 1e6, 1);
    }
    std::printf("\nAsync scheduler, closed loop (window 4, %d "
                "lanes, head budget %lld)\n\n%s",
                sched.config().lanes,
                static_cast<long long>(sched.config().headBudget),
                rt.render().c_str());
    std::printf("\nscheduler: %lld batches for %lld requests "
                "(%.2f req/batch), %lld shed, max queue depth "
                "%lld\n", static_cast<long long>(st.batches),
                static_cast<long long>(st.completed),
                st.meanBatchRequests,
                static_cast<long long>(st.shed),
                static_cast<long long>(st.maxQueueDepth));

    std::printf(
        "\nShape: parallelism (prefill, disaggregation, speculative\n"
        "decoding) is what makes dynamic-sparsity attention pay off;\n"
        "at decode-scale parallelism the prediction overhead\n"
        "amortizes over too few queries (the paper's LTPP thesis).\n"
        "The engine table shows the same effect at the op level:\n"
        "decode rows pay the whole prediction pass for one query\n"
        "row, while the KV cache absorbs most key generation.\n"
        "The scheduler table adds the serving view: decode steps\n"
        "ride along in prefill batches (co-heads), so their queue\n"
        "time — not their compute — dominates the latency budget.\n");
    return 0;
}
