/**
 * @file
 * LLM serving scenarios: where large-scale token parallel processing
 * (LTPP) comes from — prefill, disaggregated prefill servers, and
 * speculative decoding (Section I of the paper) — and how the SOFA
 * accelerator compares to the A100 model in each regime. Low-
 * parallelism decode is included to show where dynamic sparsity's
 * prediction overhead stops paying off.
 *
 * Two levels of fidelity side by side: the analytic arch/ models at
 * full scenario scale (latency, speedup), and the value-level
 * stage engine (core/engine) executing each regime at functional
 * scale — batched multi-head, with KV-cache decode modes — to show
 * the op-level shape of each regime (keys generated vs cached,
 * formal ops per query row).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "common/table.h"
#include "core/engine.h"
#include "model/scenarios.h"

using namespace sofa;

int
main()
{
    const auto model = models::llama7b();
    GpuModel gpu;
    SofaConfig cfg;
    cfg.topkFrac = 0.1;
    SofaAccelerator acc(cfg);

    Table t;
    t.column("scenario", Align::Left)
        .column("mode", Align::Left)
        .column("T")
        .column("S")
        .column("GPU us")
        .column("SOFA us")
        .column("speedup")
        .column("tok/s (SOFA)");

    for (const auto &s : servingSuite(model)) {
        AttentionShape shape;
        shape.queries = s.tokenParallelism();
        shape.seq = static_cast<int>(s.contextLength());
        shape.headDim = model.headDim();
        shape.heads = model.heads;

        const double gpu_ns =
            gpu.run(shape, GpuMode::Dense).timeNs;
        const double sofa_ns = acc.run(shape).timeNs;
        // Whole-model step time ~ layers x attention slice (the
        // dominant term at long context); tokens/s from the
        // scenario's production per step.
        const double step_s =
            sofa_ns * model.layers * 1e-9;
        const double tok_s = s.tokensProduced() / step_s;

        t.row()
            .cell(s.name)
            .cell(servingModeName(s.mode))
            .cell(static_cast<std::int64_t>(s.tokenParallelism()))
            .cell(static_cast<std::int64_t>(s.contextLength()))
            .cell(gpu_ns / 1e3, 1)
            .cell(sofa_ns / 1e3, 1)
            .cell(gpu_ns / sofa_ns, 2)
            .cell(tok_s, 0);
    }

    std::printf("LTPP serving scenarios — Llama-7B attention "
                "(keep 10%%)\n\n%s", t.render().c_str());

    // Functional engine pass: one representative scenario per mode,
    // executed value-level (batch x heads, shared tokens per item,
    // KV-cache decode where the regime implies one).
    EngineConfig ecfg;
    ecfg.pipeline.topkFrac = 0.1;
    ecfg.computeQuality = false; // op shape, not accuracy, here

    Table ft;
    ft.column("mode", Align::Left)
        .column("B")
        .column("H")
        .column("T")
        .column("S")
        .column("keys gen")
        .column("keys cached")
        .column("formal Mops/row")
        .column("predict share");
    for (const auto &s : representativeScenarios(model)) {
        ModelWorkloadSpec spec =
            scenarioWorkloadSpec(s, /*max_context=*/256,
                                 /*max_batch=*/2, /*max_heads=*/2);
        spec.mixture = model.mixture;
        const ModelWorkload mw = generateModelWorkload(spec);
        const EngineResult r = runEngine(mw, ecfg);
        const double rows = static_cast<double>(spec.batch) *
                            spec.heads * spec.queryRows();
        const double predict_share =
            r.predictionOps.normalized() /
            r.totalOps().normalized();
        ft.row()
            .cell(servingModeName(s.mode))
            .cell(static_cast<std::int64_t>(spec.batch))
            .cell(static_cast<std::int64_t>(spec.heads))
            .cell(static_cast<std::int64_t>(spec.queryRows()))
            .cell(static_cast<std::int64_t>(spec.contextLen()))
            .cell(r.keysGenerated)
            .cell(r.keysCached)
            .cell(r.formalOps.normalized() / rows / 1e6, 3)
            .cell(predict_share, 3);
    }
    std::printf("\nFunctional stage engine at reduced scale "
                "(keep 10%%)\n\n%s", ft.render().c_str());
    std::printf(
        "\nShape: parallelism (prefill, disaggregation, speculative\n"
        "decoding) is what makes dynamic-sparsity attention pay off;\n"
        "at decode-scale parallelism the prediction overhead\n"
        "amortizes over too few queries (the paper's LTPP thesis).\n"
        "The engine table shows the same effect at the op level:\n"
        "decode rows pay the whole prediction pass for one query\n"
        "row, while the KV cache absorbs most key generation.\n");
    return 0;
}
