/**
 * @file
 * Ablation — RASS scheduling (Fig. 15): the paper's 4-query example,
 * plus traffic on realistic SADS selections across buffer sizes and
 * sharing levels (paper example: 33% reduction; fleet average ~23%).
 */

#include <cstdio>

#include "arch/rass.h"
#include "benchmain.h"
#include "common/stats.h"
#include "core/sads.h"
#include "model/workload.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== RASS ablation ===\n");

    // The Fig. 15 worked example.
    SelectionList example = {
        {0, 1, 2, 3, 4, 5},
        {2, 3, 4, 5, 6, 7},
        {2, 3, 5, 6},
        {0, 1, 4, 7},
    };
    auto naive = scheduleNaive(example, 4);
    auto rass = scheduleRass(example, 4);
    const double example_saved =
        1.0 - static_cast<double>(rass.vectorLoads) /
                  naive.vectorLoads;
    std::printf("Fig. 15 example: naive %lld vectors, RASS %lld "
                "vectors (%.0f%% reduction; paper 33%%)\n",
                static_cast<long long>(naive.vectorLoads),
                static_cast<long long>(rass.vectorLoads),
                100.0 * example_saved);
    rep.metric("example_naive_loads",
               static_cast<double>(naive.vectorLoads), "count")
        .tol(0.0);
    rep.metric("example_rass_loads",
               static_cast<double>(rass.vectorLoads), "count")
        .tol(0.0);
    rep.metric("example_saved_frac", example_saved, "fraction")
        .paper(0.33);

    std::printf("\n%-14s %8s | %10s %10s %8s\n", "mixture", "buffer",
                "naive", "RASS", "saved");
    std::vector<double> savings;
    struct Mix { const char *label; DistMixture m; };
    for (const auto &mx :
         {Mix{"TypeI-heavy", {0.6, 0.4, 0.0}},
          Mix{"TypeII", {0.1, 0.9, 0.0}},
          Mix{"Llama-like", {0.25, 0.745, 0.005}}}) {
        WorkloadSpec spec;
        spec.seq = 512;
        spec.queries = 64;
        spec.mixture = mx.m;
        spec.seed = opts.seedOr(0x4A55 + mx.m.type1 * 100);
        auto w = generateWorkload(spec);
        auto sel = sadsTopK(w.scores, 64, {}).selections();
        for (int buf : {16, 64, 256}) {
            auto n = scheduleNaive(sel, buf);
            auto r = scheduleRass(sel, buf);
            const double saved =
                1.0 - static_cast<double>(r.vectorLoads) /
                          static_cast<double>(n.vectorLoads);
            savings.push_back(saved);
            std::printf("%-14s %8d | %10lld %10lld %7.1f%%\n",
                        mx.label, buf,
                        static_cast<long long>(n.vectorLoads),
                        static_cast<long long>(r.vectorLoads),
                        100.0 * saved);
        }
    }
    std::printf("\nMean saving: %.1f%% (paper average ~23%%)\n",
                100.0 * mean(savings));
    // SADS selections are discrete; a near-tie flip moves a load or
    // two out of a few thousand.
    rep.metric("mean_saved_frac", mean(savings), "fraction")
        .paper(0.23).tol(0.02);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("ablation_rass", run)
