/**
 * @file
 * Fig. 6(b) — dataflow comparison: standard Transformer workflow
 * (dense, score matrices round-trip memory), traditional dynamic-
 * sparsity accelerator (whole-row processing: Pre-Atten / Atten
 * stored to DRAM, loaded row-wise), and the SOFA accelerator
 * (cross-stage tiled pipeline, no intermediate DRAM traffic). Also
 * prints the controller's tile-level Gantt timeline for the tiled
 * vs serialized schedules (the latency reduction of Fig. 6(b)).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "arch/controller.h"
#include "arch/whole_row.h"
#include "baselines/gpu.h"
#include "benchmain.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    // A GPT-2-class slice: S=1024, T=256 parallel rows, 12 heads.
    AttentionShape shape;
    shape.queries = 256;
    shape.seq = 1024;
    shape.headDim = 64;
    shape.heads = 12;

    std::printf("=== Fig. 6(b): dataflow comparison (S=1024, T=256, "
                "12 heads) ===\n");
    std::printf("%-28s | %12s %12s %12s\n", "Workflow", "compute(us)",
                "memory(us)", "total(us)");

    // Standard dense workflow on the GPU model.
    GpuModel gpu;
    auto dense = gpu.run(shape, GpuMode::Dense);
    std::printf("%-28s | %12.1f %12s %12.1f\n",
                "standard Transformer (GPU)", dense.timeNs / 1e3,
                "(incl.)", dense.timeNs / 1e3);

    // Traditional whole-row dynamic-sparsity accelerator.
    WholeRowConfig wr;
    wr.name = "whole-row";
    wr.throughputGops = 2048.0; // SOFA-sized datapath for fairness
    auto trad = runWholeRow(wr, shape.queries, shape.seq,
                            shape.headDim, shape.heads);
    std::printf("%-28s | %12.1f %12.1f %12.1f\n",
                "traditional accelerator", trad.computeNs / 1e3,
                trad.memoryNs / 1e3, trad.totalNs() / 1e3);

    // SOFA tiled pipeline.
    SofaConfig cfg;
    cfg.topkFrac = 0.12;
    SofaAccelerator sofa_acc(cfg);
    auto sofa_res = sofa_acc.run(shape);
    std::printf("%-28s | %12.1f %12.1f %12.1f\n", "SOFA accelerator",
                sofa_res.stats.get("compute_ns") / 1e3,
                sofa_res.stats.get("memory_ns") / 1e3,
                sofa_res.timeNs / 1e3);

    // Intermediate traffic the tiled pipeline eliminates: rerun the
    // same configuration serialized; the DRAM-byte delta is exactly
    // the Pre-Atten/Atten store+reload traffic.
    SofaConfig ser_cfg = cfg;
    ser_cfg.features.tiledPipeline = false;
    auto ser_res = SofaAccelerator(ser_cfg).run(shape);
    const double sofa_intermediate_mb =
        (ser_res.dramBytes - sofa_res.dramBytes) / 1e6;
    std::printf("\nIntermediate (Pre-Atten/Atten) DRAM traffic: "
                "traditional %.2f MB, SOFA 0 MB (tiling eliminates "
                "%.2f MB)\n",
                trad.spillBytes / 1e6, sofa_intermediate_mb);

    // Tile-level schedules: serialized vs cross-stage tiled.
    std::printf("\n--- tile-level schedule (16 tiles, per-tile "
                "costs predict/sort/kvgen/formal = 4/1/3/5) ---\n");
    StageCosts costs;
    costs.perTile = {4.0, 1.0, 3.0, 5.0};
    auto serial = TiledController(false).schedule(16, costs);
    auto tiled = TiledController(true).schedule(16, costs);
    auto barred = TiledController(true, true).schedule(16, costs);
    std::printf("serialized stages : %.0f cycles\n",
                serial.totalCycles);
    std::printf("row-barrier top-k : %.0f cycles\n",
                barred.totalCycles);
    std::printf("cross-stage tiled : %.0f cycles (%.1fx less than "
                "serialized)\n",
                tiled.totalCycles,
                serial.totalCycles / tiled.totalCycles);
    std::printf("\nTiled pipeline timeline:\n%s",
                tiled.gantt(64).c_str());
    std::printf("\nRow-barrier timeline (whole-row top-k):\n%s",
                barred.gantt(64).c_str());

    // All numbers here come from analytic / cycle models, so they
    // are deterministic and tightly golden-checkable.
    rep.metric("gpu_dense_total_us", dense.timeNs / 1e3, "us");
    rep.metric("whole_row_total_us", trad.totalNs() / 1e3, "us");
    rep.metric("sofa_total_us", sofa_res.timeNs / 1e3, "us");
    rep.metric("whole_row_spill_mb", trad.spillBytes / 1e6, "mb");
    // Derived, not asserted: regresses if the tiled pipeline ever
    // starts spilling intermediates (delta would shrink) or the
    // serialized model changes.
    rep.metric("tiling_spill_eliminated_mb", sofa_intermediate_mb,
               "mb");
    rep.metric("serialized_cycles", serial.totalCycles, "cycles")
        .tol(0.0);
    rep.metric("row_barrier_cycles", barred.totalCycles, "cycles")
        .tol(0.0);
    rep.metric("tiled_cycles", tiled.totalCycles, "cycles").tol(0.0);
    rep.metric("tiled_speedup_vs_serialized",
               serial.totalCycles / tiled.totalCycles, "ratio");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig06_dataflow", run)
