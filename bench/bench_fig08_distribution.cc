/**
 * @file
 * Fig. 8 — Attention-score distribution taxonomy: generate score rows
 * for each model family's mixture and classify them back into
 * Type-I / Type-II / Type-III, reproducing the per-model proportions
 * and the >95% Type-I + Type-II coverage (the DCE justification).
 */

#include <algorithm>
#include <cstdio>

#include "benchmain.h"
#include "model/config.h"
#include "model/workload.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== Fig. 8(b): distribution type proportions ===\n");
    std::printf("%-12s | %8s %8s %8s | %s\n", "Model", "Type-I",
                "Type-II", "Type-III", "I+II");
    double worst_cover = 1.0;
    const int rows = opts.quick ? 256 : 512;
    for (const auto &m : {models::vitBase(), models::bertBase(),
                          models::gpt2(), models::llama7b()}) {
        Rng rng(opts.seedOr(0xF16'8000 + m.layers));
        ScoreRowParams p;
        p.seq = 1024;
        MatF scores = generateScoreMatrix(rng, m.mixture, rows, p);
        auto tally = classifyScoreMatrix(scores);
        const double cover = tally.frac1() + tally.frac2();
        worst_cover = std::min(worst_cover, cover);
        std::printf("%-12s | %7.1f%% %7.1f%% %7.1f%% | %5.1f%%\n",
                    m.name.c_str(), 100.0 * tally.frac1(),
                    100.0 * tally.frac2(), 100.0 * tally.frac3(),
                    100.0 * cover);
        if (m.name == models::llama7b().name) {
            // Row classification is discrete; allow a few rows of
            // jitter across toolchains.
            rep.metric("llama7b_type2_frac", tally.frac2(),
                       "fraction").tol(0.02);
            rep.metric("llama7b_cover", cover, "fraction").tol(0.02);
        }
    }
    std::printf("\nWorst-case Type-I+II coverage: %.1f%% "
                "(paper: >95%% on average, Type-II >76%%)\n",
                100.0 * worst_cover);
    rep.metric("worst_type12_cover", worst_cover, "fraction")
        .paper(0.95).tol(0.02);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig08_distribution", run)
