/**
 * @file
 * Table II — comparison with the eight SOTA accelerators: published
 * parameters, tech-normalized (28nm / 1.0V) energy and area
 * efficiency, and the normalized latency on the Llama-7B attention
 * slice (137 GOPs, every design scaled to 128 multipliers @ 1 GHz).
 */

#include <cstdio>
#include <vector>

#include "baselines/sota.h"
#include "benchmain.h"
#include "common/stats.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    const double llama_attention_gops = 137.0;

    std::printf("=== Table II: SOTA comparison ===\n");
    std::printf("%-10s | %5s %5s %7s %7s | %9s %10s %10s %9s %9s\n",
                "Accel", "Tech", "Loss", "Saved", "GOPS", "Core-Eff",
                "Scaled-Eff", "Device-Eff", "Area-Eff", "Lat(ms)");

    auto all = sotaTable();
    all.push_back(sofaRow());
    const auto sofa_acc = sofaRow();
    std::vector<double> core_gains, dev_gains, area_gains, lat_gains;

    for (const auto &a : all) {
        const double lat = a.latencyMs(llama_attention_gops);
        const double dev = a.ioPowerW > 0.0
                               ? a.scaledDeviceEfficiency()
                               : 0.0;
        std::printf("%-10s | %4.0fn %4.1f%% %6.0f%% %7.0f | %9.0f "
                    "%10.0f %10.0f %9.0f %9.0f\n",
                    a.name.c_str(), a.techNm, a.accuracyLossPct,
                    100.0 * a.savedComputeFrac, a.throughputGops,
                    a.coreEfficiency(), a.scaledCoreEfficiency(),
                    dev, a.scaledAreaEfficiency(), lat);
        if (a.name != "SOFA") {
            core_gains.push_back(sofa_acc.scaledCoreEfficiency() /
                                 a.scaledCoreEfficiency());
            if (a.ioPowerW > 0.0) {
                dev_gains.push_back(
                    sofa_acc.scaledDeviceEfficiency() /
                    a.scaledDeviceEfficiency());
            }
            area_gains.push_back(sofa_acc.scaledAreaEfficiency() /
                                 a.scaledAreaEfficiency());
            lat_gains.push_back(
                lat / sofa_acc.latencyMs(llama_attention_gops));
        }
    }

    std::printf("\nSOFA vs SOTA (geomean): %.1fx core energy eff, "
                "%.1fx device energy eff (paper 15.8x avg), "
                "%.1fx area eff (paper 10.3x), %.1fx latency "
                "(paper 9.3x speedup)\n",
                geomean(core_gains), geomean(dev_gains),
                geomean(area_gains), geomean(lat_gains));
    std::printf("SOFA device efficiency: %.0f GOPS/W (paper 7183); "
                "area efficiency: %.0f GOPS/mm2 (paper 4292)\n",
                sofa_acc.scaledDeviceEfficiency(),
                sofa_acc.scaledAreaEfficiency());

    rep.metric("core_eff_gain_geomean", geomean(core_gains),
               "ratio");
    rep.metric("device_eff_gain_geomean", geomean(dev_gains),
               "ratio").paper(15.8);
    rep.metric("area_eff_gain_geomean", geomean(area_gains),
               "ratio").paper(10.3);
    rep.metric("latency_gain_geomean", geomean(lat_gains), "ratio")
        .paper(9.3);
    rep.metric("sofa_device_eff", sofa_acc.scaledDeviceEfficiency(),
               "gops_per_w").paper(7183.0);
    rep.metric("sofa_area_eff", sofa_acc.scaledAreaEfficiency(),
               "gops_per_mm2").paper(4292.0);
    rep.metric("sofa_latency_ms",
               sofa_acc.latencyMs(llama_attention_gops), "ms");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("tab02_sota", run)
