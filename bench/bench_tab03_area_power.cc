/**
 * @file
 * Table III — area and power breakdown of the SOFA accelerator core
 * at TSMC 28nm / 1 GHz.
 */

#include <cstdio>

#include "benchmain.h"
#include "energy/area_model.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    SofaAreaModel m;
    std::printf("=== Table III: SOFA core area/power breakdown ===\n");
    std::printf("%-20s | %-42s | %9s %10s\n", "Module", "Parameters",
                "Area[mm2]", "Power[mW]");
    for (const auto &mod : m.modules()) {
        std::printf("%-20s | %-42s | %9.3f %10.2f\n",
                    mod.module.c_str(), mod.parameters.c_str(),
                    mod.areaMm2, mod.powerMw);
    }
    std::printf("%-20s | %-42s | %9.2f %10.2f\n", "Total",
                "TSMC 28nm @ 1GHz", m.totalAreaMm2(),
                m.totalPowerMw());
    std::printf("\nLP (DLZS + SADS) share: %.0f%% area, %.0f%% power "
                "(paper: ~18%% / ~15%%)\n",
                100.0 * m.lpAreaFraction(),
                100.0 * m.lpPowerFraction());

    rep.metric("total_area_mm2", m.totalAreaMm2(), "mm2");
    rep.metric("total_power_mw", m.totalPowerMw(), "mw");
    rep.metric("lp_area_fraction", m.lpAreaFraction(), "fraction")
        .paper(0.18);
    rep.metric("lp_power_fraction", m.lpPowerFraction(), "fraction")
        .paper(0.15);
    rep.metric("modules", static_cast<double>(m.modules().size()),
               "count").tol(0.0);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("tab03_area_power", run)
