/**
 * @file
 * Ablation — SADS segment count and clipping radius: comparison
 * savings vs vanilla whole-row sorting, and the softmax-mass recall
 * each configuration retains (the DCE accuracy argument of Fig. 9).
 */

#include <cstdio>

#include "benchmain.h"
#include "core/sads.h"
#include "model/workload.h"
#include "sparsity/metrics.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    WorkloadSpec spec;
    spec.seq = opts.quick ? 1024 : 2048;
    spec.queries = 64;
    spec.mixture = {0.25, 0.75, 0.0};
    spec.seed = opts.seedOr(0x5AD5);
    auto w = generateWorkload(spec);
    const int k = spec.seq / 5;

    const double vanilla_cmp = static_cast<double>(
        vanillaSortComparisons(spec.queries, spec.seq));

    std::printf("=== SADS segment-count sweep (S=%d, k=20%%) ===\n",
                spec.seq);
    std::printf("%9s | %14s %9s | %9s %9s\n", "segments",
                "comparisons", "vs full", "recall", "mass");
    for (int n : {1, 2, 4, 8, 16, 32}) {
        SadsConfig cfg;
        cfg.segments = n;
        auto res = sadsTopK(w.scores, k, cfg);
        auto exact = exactTopKRows(w.scores, k);
        const double cmp_frac = res.ops.cmps() / vanilla_cmp;
        const double recall = topkRecall(res.selections(), exact);
        const double mass =
            softmaxMassRecall(w.scores, res.selections());
        std::printf("%9d | %14lld %8.1f%% | %8.1f%% %8.1f%%\n", n,
                    static_cast<long long>(res.ops.cmps()),
                    100.0 * cmp_frac, 100.0 * recall, 100.0 * mass);
        if (n == 4 || n == 16) {
            char name[64];
            std::snprintf(name, sizeof(name), "cmp_frac_seg%d", n);
            rep.metric(name, cmp_frac, "fraction").tol(0.01);
            std::snprintf(name, sizeof(name), "mass_seg%d", n);
            rep.metric(name, mass, "fraction").tol(0.02);
            if (n == 16) {
                rep.metric("recall_seg16", recall, "fraction")
                    .tol(0.02);
            }
        }
    }

    std::printf("\n=== clipping-radius sweep (4 segments) ===\n");
    std::printf("%9s | %12s %9s %9s\n", "radius", "clipped",
                "mass", "cmp-saved");
    SadsConfig base;
    base.segments = 4;
    auto open = sadsTopK(w.scores, k, base);
    for (double r : {1.0, 0.6, 0.4, 0.25, 0.15}) {
        SadsConfig cfg = base;
        cfg.radiusFrac = r;
        auto res = sadsTopK(w.scores, k, cfg);
        std::int64_t clipped = 0;
        for (const auto &row : res.rows)
            clipped += row.clipped;
        const double mass =
            softmaxMassRecall(w.scores, res.selections());
        const double cmp_saved =
            1.0 -
            static_cast<double>(res.ops.cmps()) / open.ops.cmps();
        std::printf("%9.2f | %12lld %8.1f%% %8.1f%%\n", r,
                    static_cast<long long>(clipped), 100.0 * mass,
                    100.0 * cmp_saved);
        if (r == 0.4) {
            rep.metric("cmp_saved_radius40", cmp_saved, "fraction")
                .tol(0.02);
            rep.metric("mass_radius40", mass, "fraction").tol(0.02);
        }
    }
    std::printf("\nShape: few segments ~ exact; more segments save "
                "comparisons with modest mass loss;\nclipping saves "
                "switching with negligible mass loss until the "
                "radius gets aggressive.\n");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("ablation_sads", run)
