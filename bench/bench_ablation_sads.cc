/**
 * @file
 * Ablation — SADS segment count and clipping radius: comparison
 * savings vs vanilla whole-row sorting, and the softmax-mass recall
 * each configuration retains (the DCE accuracy argument of Fig. 9).
 */

#include <cstdio>

#include "core/sads.h"
#include "model/workload.h"
#include "sparsity/metrics.h"

using namespace sofa;

int
main()
{
    WorkloadSpec spec;
    spec.seq = 2048;
    spec.queries = 64;
    spec.mixture = {0.25, 0.75, 0.0};
    spec.seed = 0x5AD5;
    auto w = generateWorkload(spec);
    const int k = 2048 / 5;

    const double vanilla_cmp = static_cast<double>(
        vanillaSortComparisons(spec.queries, spec.seq));

    std::printf("=== SADS segment-count sweep (S=2048, k=20%%) ===\n");
    std::printf("%9s | %14s %9s | %9s %9s\n", "segments",
                "comparisons", "vs full", "recall", "mass");
    for (int n : {1, 2, 4, 8, 16, 32}) {
        SadsConfig cfg;
        cfg.segments = n;
        auto res = sadsTopK(w.scores, k, cfg);
        auto exact = exactTopKRows(w.scores, k);
        std::printf("%9d | %14lld %8.1f%% | %8.1f%% %8.1f%%\n", n,
                    static_cast<long long>(res.ops.cmps()),
                    100.0 * res.ops.cmps() / vanilla_cmp,
                    100.0 * topkRecall(res.selections(), exact),
                    100.0 * softmaxMassRecall(w.scores,
                                              res.selections()));
    }

    std::printf("\n=== clipping-radius sweep (4 segments) ===\n");
    std::printf("%9s | %12s %9s %9s\n", "radius", "clipped",
                "mass", "cmp-saved");
    SadsConfig base;
    base.segments = 4;
    auto open = sadsTopK(w.scores, k, base);
    for (double r : {1.0, 0.6, 0.4, 0.25, 0.15}) {
        SadsConfig cfg = base;
        cfg.radiusFrac = r;
        auto res = sadsTopK(w.scores, k, cfg);
        std::int64_t clipped = 0;
        for (const auto &row : res.rows)
            clipped += row.clipped;
        std::printf("%9.2f | %12lld %8.1f%% %8.1f%%\n", r,
                    static_cast<long long>(clipped),
                    100.0 * softmaxMassRecall(w.scores,
                                              res.selections()),
                    100.0 * (1.0 - static_cast<double>(
                                       res.ops.cmps()) /
                                       open.ops.cmps()));
    }
    std::printf("\nShape: few segments ~ exact; more segments save "
                "comparisons with modest mass loss;\nclipping saves "
                "switching with negligible mass loss until the "
                "radius gets aggressive.\n");
    return 0;
}
