/**
 * @file
 * Fig. 21 — Incremental gain breakdown of SOFA's mechanisms:
 * (a) throughput on GPU/TPU: software (paper 3.16x / 2.9x), then
 * +DLZS engine, +SADS engine, +SU-FA engine, +RASS unit;
 * (b) energy-efficiency breakdown on GPU (paper 4.2x software,
 * +DLZS 2.48x, +SADS 2.1x, +SU-FA 1.91x, +RASS 1.71x).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "baselines/tpu.h"
#include "benchmain.h"
#include "common/stats.h"
#include "model/suite.h"

using namespace sofa;

namespace {

/** Accelerator variant with engines enabled incrementally. */
SofaConfig
variant(bool dlzs, bool sads, bool sufa, bool rass)
{
    SofaConfig cfg;
    cfg.topkFrac = 0.12;
    cfg.features.dlzsPrediction = dlzs;
    cfg.features.sadsSorting = sads;
    cfg.features.sufaOrdering = sufa;
    cfg.features.rassScheduling = rass;
    // Without the custom engines the pipeline still tiles (the ASIC
    // substrate exists); engines are what each step adds.
    return cfg;
}

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::vector<AttentionShape> shapes;
    for (const auto &b : suiteSmall()) {
        AttentionShape s;
        s.queries = 512;
        s.seq = b.seq;
        s.headDim = b.model.headDim();
        s.heads = 4;
        // The breakdown isolates the attention path (the paper's
        // engine ladder); a lean token dimension keeps on-demand KV
        // generation off the critical path.
        s.tokenDim = 48;
        shapes.push_back(s);
    }

    GpuModel gpu;
    TpuModel tpu;

    std::printf("=== Fig. 21(a): throughput-gain breakdown ===\n");
    // Software-on-GPU/TPU step.
    std::vector<double> g_soft, t_soft;
    for (const auto &s : shapes) {
        g_soft.push_back(gpu.run(s, GpuMode::Dense).timeNs /
                         gpu.run(s, GpuMode::SofaSoft, 0.12).timeNs);
        t_soft.push_back(tpu.run(s, GpuMode::Dense).timeNs /
                         tpu.run(s, GpuMode::SofaSoft, 0.12).timeNs);
    }
    std::printf("%-18s | GPU %5.2fx  TPU %5.2fx  "
                "(paper 3.16x / 2.9x)\n",
                "SOFA software", geomean(g_soft), geomean(t_soft));
    rep.metric("software_gain_gpu", geomean(g_soft), "ratio")
        .paper(3.16);
    rep.metric("software_gain_tpu", geomean(t_soft), "ratio")
        .paper(2.9);

    // Engine steps measured on the accelerator ablations, as the
    // incremental time ratio when each engine turns on.
    struct Step
    {
        const char *label;
        const char *slug;
        SofaConfig before, after;
        const char *paper;
        double paperTime;
    };
    std::vector<Step> steps = {
        {"+DLZS engine", "dlzs", variant(false, false, false, false),
         variant(true, false, false, false), "1.65x / 1.82x", 1.65},
        {"+SADS engine", "sads", variant(true, false, false, false),
         variant(true, true, false, false), "1.28x / 1.52x", 1.28},
        {"+SU-FA engine", "sufa", variant(true, true, false, false),
         variant(true, true, true, false), "1.26x / 1.1x", 1.26},
        {"+RASS unit", "rass", variant(true, true, true, false),
         variant(true, true, true, true), "1.14x / 1.3x", 1.14},
    };
    for (const auto &st : steps) {
        std::vector<double> time_gain, energy_gain;
        SofaAccelerator before(st.before), after(st.after);
        for (const auto &s : shapes) {
            auto rb = before.run(s);
            auto ra = after.run(s);
            time_gain.push_back(rb.timeNs / ra.timeNs);
            energy_gain.push_back(
                (rb.energyPj + rb.dramEnergyPj) /
                (ra.energyPj + ra.dramEnergyPj));
        }
        std::printf("%-18s | time %5.2fx  energy %5.2fx  "
                    "(paper %s)\n",
                    st.label, geomean(time_gain),
                    geomean(energy_gain), st.paper);
        rep.metric(std::string("time_gain_") + st.slug,
                   geomean(time_gain), "ratio").paper(st.paperTime);
        rep.metric(std::string("energy_gain_") + st.slug,
                   geomean(energy_gain), "ratio");
    }

    std::printf("\n=== Fig. 21(b): cumulative energy efficiency vs "
                "dense GPU ===\n");
    std::vector<double> cum;
    SofaAccelerator full(variant(true, true, true, true));
    for (const auto &s : shapes) {
        auto r = full.run(s);
        cum.push_back(r.gopsPerWatt /
                      gpu.run(s, GpuMode::Dense).gopsPerWatt);
    }
    std::printf("Full SOFA vs dense GPU: %.1fx energy efficiency\n",
                geomean(cum));
    rep.metric("full_energy_eff_gain", geomean(cum), "ratio");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig21_breakdown", run)
