/**
 * @file
 * Ablation — DSE for SOFA tiling (Algorithm 1): the BERT-Base search
 * space size, Bayesian-optimization convergence vs random search,
 * and the chosen per-layer tile counts at the optimum.
 */

#include <cstdio>

#include "benchmain.h"
#include "core/dse.h"

using namespace sofa;

namespace {

/**
 * Objective backed by the analytic penalties plus a smooth accuracy
 * model: accuracy prefers large Bc (small Tc) and high top-k, which
 * tensions against Lcmp/Lexp exactly as Section III-D describes.
 */
DseEvaluation
objective(const DsePoint &p)
{
    DseEvaluation e;
    double acc = 0.0;
    for (int tc : p.tcPerLayer) {
        // More tiles -> more sorting-boundary mistakes -> loss.
        acc += 0.004 * tc;
    }
    acc /= static_cast<double>(p.tcPerLayer.size());
    // Too-small top-k loses accuracy sharply.
    acc += 0.08 / p.topkFrac * 0.05;
    e.len = acc;
    e.lcmp = analyticLcmp(p, 512);
    e.lexp = analyticLexp(p, 512);
    return e;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    DseSpace space;
    space.layers = 12; // BERT-Base

    std::printf("=== DSE ablation (BERT-Base space) ===\n");
    std::printf("Search space size: %.2e configurations "
                "(paper: >1e15, grid search >1e8 hours)\n",
                space.totalConfigurations());

    const int bo_iters = opts.quick ? 48 : 120;
    const int rs_iters = opts.quick ? 56 : 136;
    DseObjectiveWeights w{0.24, 0.31}; // paper's BERT-B/L alpha/beta
    auto bo = bayesianSearch(space, w, objective, bo_iters, 16, 256,
                             static_cast<int>(opts.seedOr(1)));
    auto rs = randomSearch(space, w, objective, rs_iters,
                           static_cast<int>(opts.seedOr(2)));

    std::printf("\nBayesian search: best %.4f after %lld evals\n",
                bo.bestObjective,
                static_cast<long long>(bo.evaluations));
    std::printf("Random search  : best %.4f after %lld evals\n",
                rs.bestObjective,
                static_cast<long long>(rs.evaluations));

    std::printf("\nBest-so-far trajectory (BO):\n");
    for (std::size_t i = 0; i < bo.history.size(); i += 17)
        std::printf("  iter %3zu: %.4f\n", i, bo.history[i]);

    std::printf("\nChosen configuration: top-k = %.0f%%, Tc per "
                "layer:", 100.0 * bo.best.topkFrac);
    for (int tc : bo.best.tcPerLayer)
        std::printf(" %d", tc);
    std::printf("\nObjective terms: Len=%.4f Lcmp=%.4f Lexp=%.4f\n",
                bo.bestEval.len, bo.bestEval.lcmp, bo.bestEval.lexp);

    rep.metric("space_size", space.totalConfigurations(), "count");
    rep.metric("bo_evaluations",
               static_cast<double>(bo.evaluations), "count").tol(0.0);
    // The GP argmax chases tiny expected-improvement differences, so
    // the found optimum may shift across toolchains; gate only the
    // coarse convergence claims.
    rep.metric("bo_best_objective", bo.bestObjective, "loss")
        .tol(0.25);
    rep.metric("rs_best_objective", rs.bestObjective, "loss")
        .tol(0.25);
    rep.metric("bo_beats_random",
               bo.bestObjective <= rs.bestObjective ? 1.0 : 0.0,
               "bool").tol(0.0);
    rep.metric("chosen_topk_frac", bo.best.topkFrac, "fraction")
        .tol(0.5);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("ablation_dse", run)
