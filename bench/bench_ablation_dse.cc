/**
 * @file
 * Ablation — DSE for SOFA tiling (Algorithm 1): the BERT-Base search
 * space size, Bayesian-optimization convergence vs random search,
 * and the chosen per-layer tile counts at the optimum.
 */

#include <cstdio>

#include "core/dse.h"

using namespace sofa;

namespace {

/**
 * Objective backed by the analytic penalties plus a smooth accuracy
 * model: accuracy prefers large Bc (small Tc) and high top-k, which
 * tensions against Lcmp/Lexp exactly as Section III-D describes.
 */
DseEvaluation
objective(const DsePoint &p)
{
    DseEvaluation e;
    double acc = 0.0;
    for (int tc : p.tcPerLayer) {
        // More tiles -> more sorting-boundary mistakes -> loss.
        acc += 0.004 * tc;
    }
    acc /= static_cast<double>(p.tcPerLayer.size());
    // Too-small top-k loses accuracy sharply.
    acc += 0.08 / p.topkFrac * 0.05;
    e.len = acc;
    e.lcmp = analyticLcmp(p, 512);
    e.lexp = analyticLexp(p, 512);
    return e;
}

} // namespace

int
main()
{
    DseSpace space;
    space.layers = 12; // BERT-Base

    std::printf("=== DSE ablation (BERT-Base space) ===\n");
    std::printf("Search space size: %.2e configurations "
                "(paper: >1e15, grid search >1e8 hours)\n",
                space.totalConfigurations());

    DseObjectiveWeights w{0.24, 0.31}; // paper's BERT-B/L alpha/beta
    auto bo = bayesianSearch(space, w, objective, 120, 16, 256, 1);
    auto rs = randomSearch(space, w, objective, 136, 2);

    std::printf("\nBayesian search: best %.4f after %lld evals\n",
                bo.bestObjective,
                static_cast<long long>(bo.evaluations));
    std::printf("Random search  : best %.4f after %lld evals\n",
                rs.bestObjective,
                static_cast<long long>(rs.evaluations));

    std::printf("\nBest-so-far trajectory (BO):\n");
    for (std::size_t i = 0; i < bo.history.size(); i += 17)
        std::printf("  iter %3zu: %.4f\n", i, bo.history[i]);

    std::printf("\nChosen configuration: top-k = %.0f%%, Tc per "
                "layer:", 100.0 * bo.best.topkFrac);
    for (int tc : bo.best.tcPerLayer)
        std::printf(" %d", tc);
    std::printf("\nObjective terms: Len=%.4f Lcmp=%.4f Lexp=%.4f\n",
                bo.bestEval.len, bo.bestEval.lcmp, bo.bestEval.lexp);
    return 0;
}
