/**
 * @file
 * Fig. 5 — FlashAttention-2 computation overhead vs vanilla
 * attention: (b) extra exponential and comparison operations vs
 * sequence length; (c) normalized total complexity vs S for several
 * tile counts Tc.
 */

#include <cstdio>

#include "attention/flash.h"
#include "benchmain.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    const int d = 64;
    std::printf("=== Fig. 5(b): FA-2 extra ops vs vanilla (Bc=16) "
                "===\n");
    std::printf("%8s | %14s %14s\n", "S", "extra exps", "extra cmps");
    for (std::int64_t s : {256, 512, 1024, 2048, 4096}) {
        auto fa = fa2AnalyticOps(s, s, 16, d); // T = S prefill rows
        auto va = vanillaAnalyticOps(s, s, d);
        std::printf("%8lld | %14lld %14lld\n",
                    static_cast<long long>(s),
                    static_cast<long long>(fa.exps() - va.exps()),
                    static_cast<long long>(fa.cmps() - va.cmps()));
        if (s == 2048) {
            // "At S=2048/Bc=16 the gap is millions of exps."
            rep.metric("extra_exps_s2048_bc16",
                       static_cast<double>(fa.exps() - va.exps()),
                       "ops").tol(0.0);
            rep.metric("extra_cmps_s2048_bc16",
                       static_cast<double>(fa.cmps() - va.cmps()),
                       "ops").tol(0.0);
        }
    }

    std::printf("\n=== Fig. 5(c): normalized complexity ratio "
                "FA-2 / vanilla ===\n");
    std::printf("%8s | %8s %8s %8s %8s\n", "S", "Bc=4", "Bc=8",
                "Bc=16", "Bc=64");
    for (std::int64_t s : {256, 512, 1024, 2048, 4096}) {
        const double va = vanillaAnalyticOps(s, s, d).normalized();
        std::printf("%8lld |", static_cast<long long>(s));
        for (int bc : {4, 8, 16, 64}) {
            const double fa =
                fa2AnalyticOps(s, s, bc, d).normalized();
            std::printf(" %8.3f", fa / va);
            if (s == 2048 && (bc == 4 || bc == 16)) {
                char name[64];
                std::snprintf(name, sizeof(name),
                              "complexity_ratio_s2048_bc%d", bc);
                rep.metric(name, fa / va, "ratio");
            }
        }
        std::printf("\n");
    }
    std::printf("\nPaper shape: FA-2 overhead grows with S and with "
                "smaller Bc (larger Tc);\nat S=2048/Bc=16 the gap is "
                "millions of exps.\n");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig05_fa2", run)
