/**
 * @file
 * Tile-planner validation bench: the TileCostModel (core/tiler)
 * against the clock. Sweeps the kernel tiling knobs (matmulNT panel
 * bytes, matmul k-block) and a sampled subset of the engine plan
 * grid, reporting predicted and measured seconds side by side
 * (`*_pred_s` / `*_meas_s`, trajectory-only) plus the Spearman rank
 * correlation between the two per sweep. Rank agreement is the
 * model's contract: the per-stage correlation (stage times span two
 * orders of magnitude, so its rank order is noise-proof) is
 * golden-gated loosely, while the kernel/plan sweeps — often
 * compute-bound near-ties on a given host — stay trajectory-only,
 * and raw plan choices and absolute predictions are
 * machine-dependent and never gated. Also gates the planner's invariants
 * as bits at tol 0: planTiles determinism, TilePlan describe/parse
 * round-trip, and autoTile engine results bit-exact vs the fixed
 * defaults — and tracks the autoTile-vs-default speedup as the
 * trajectory metric the ROADMAP's tiling thread follows.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/machine.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/engine.h"
#include "core/tiler.h"
#include "tensor/kernels.h"

namespace {

using namespace sofa;
using benchutil::timeBest;

MatF
randomMat(std::size_t rows, std::size_t cols, Rng &rng)
{
    MatF m(rows, cols);
    for (auto &x : m.data())
        x = static_cast<float>(rng.gaussian());
    return m;
}

/** Fractional ranks (ties averaged). */
std::vector<double>
ranks(const std::vector<double> &v)
{
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a,
                                          std::size_t b) {
        return v[a] < v[b];
    });
    std::vector<double> r(v.size(), 0.0);
    std::size_t i = 0;
    while (i < idx.size()) {
        std::size_t j = i;
        while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]])
            ++j;
        const double mean_rank =
            0.5 * (static_cast<double>(i) + static_cast<double>(j));
        for (std::size_t t = i; t <= j; ++t)
            r[idx[t]] = mean_rank;
        i = j + 1;
    }
    return r;
}

/** Spearman rank correlation; 0 when degenerate (constant input). */
double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        return 0.0;
    const std::vector<double> ra = ranks(a), rb = ranks(b);
    const double n = static_cast<double>(a.size());
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += ra[i];
        mb += rb[i];
    }
    ma /= n;
    mb /= n;
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (ra[i] - ma) * (rb[i] - mb);
        da += (ra[i] - ma) * (ra[i] - ma);
        db += (rb[i] - mb) * (rb[i] - mb);
    }
    if (da <= 0.0 || db <= 0.0)
        return 0.0;
    return num / std::sqrt(da * db);
}

/** Same-output check shared with bench_engine (the tol-0 bit). */
bool
sameEngineResults(const EngineResult &x, const EngineResult &y)
{
    if (x.heads.size() != y.heads.size())
        return false;
    for (std::size_t i = 0; i < x.heads.size(); ++i) {
        const HeadResult &a = x.heads[i];
        const HeadResult &b = y.heads[i];
        if (!(a.result.output == b.result.output &&
              a.result.selections == b.result.selections &&
              a.result.totalOps().total() ==
                  b.result.totalOps().total() &&
              a.result.keysGenerated == b.result.keysGenerated))
            return false;
    }
    return x.totalOps().total() == y.totalOps().total() &&
           x.keysGenerated == y.keysGenerated;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    const TileCostModel model; // cached process-wide descriptor
    std::printf("tiler benchmark: cost-model-driven tile planner "
                "(%d thread%s)\nmachine: %s\n\n", opts.threads,
                opts.threads == 1 ? "" : "s",
                model.machine().describe().c_str());

    Rng rng(opts.seedOr(0x50FA71E0ull));

    // matmulNT panel sweep: one blocked-kernel shape, the streamed-
    // panel budget swept over two orders of magnitude. Predicted and
    // measured seconds per candidate.
    {
        const std::size_t m = 128;
        const std::size_t n = opts.quick ? 1024 : 2048;
        const std::size_t k = 256;
        const MatF a = randomMat(m, k, rng);
        const MatF b = randomMat(n, k, rng);
        const std::size_t panels[] = {16 * 1024,  64 * 1024,
                                      256 * 1024, 2048 * 1024};
        Table t;
        t.column("panel KiB").column("pred s").column("meas s");
        std::vector<double> pred, meas;
        for (std::size_t pb : panels) {
            kernels::Tiling tl;
            tl.panelBytes = pb;
            kernels::ScopedTiling scoped(tl);
            MatF c;
            const double s = timeBest(
                [&] { c = matmulNTBlocked(a, b); }, 0.2,
                opts.quick ? 4 : 8);
            const double p = model.matmulNTSeconds(m, n, k, pb);
            pred.push_back(p);
            meas.push_back(s);
            t.row()
                .cell(static_cast<std::int64_t>(pb / 1024))
                .cell(p, 5)
                .cell(s, 5);
            const std::string tag =
                "matmulnt_panel" + std::to_string(pb / 1024) + "k";
            rep.metric(tag + "_pred_s", p, "s").nocheck();
            rep.metric(tag + "_meas_s", s, "s").nocheck();
        }
        const double corr = spearman(pred, meas);
        std::printf("%s\nmatmulNT panel rank correlation: %.2f\n\n",
                    t.render().c_str(), corr);
        // Compute-bound at this shape on most hosts: the measured
        // spread can be microseconds, so rank agreement here is
        // trajectory-only; the gated agreement is per stage below.
        rep.metric("matmulnt_panel_rank_corr", corr, "correlation")
            .nocheck();
    }

    // matmul k-block sweep: small blocks re-stream the C rows once
    // per block, so predictions spread widely and ranks are stable.
    {
        const std::size_t m = 96;
        const std::size_t n = opts.quick ? 192 : 384;
        const std::size_t k = 1024;
        const MatF a = randomMat(m, k, rng);
        const MatF b = randomMat(k, n, rng);
        const std::size_t blocks[] = {8, 32, 128, 512};
        Table t;
        t.column("blockK").column("pred s").column("meas s");
        std::vector<double> pred, meas;
        for (std::size_t bk : blocks) {
            kernels::Tiling tl;
            tl.blockK = bk;
            kernels::ScopedTiling scoped(tl);
            MatF c;
            const double s = timeBest(
                [&] { c = matmulBlocked(a, b); }, 0.2,
                opts.quick ? 4 : 8);
            const double p = model.matmulSeconds(m, n, k, bk);
            pred.push_back(p);
            meas.push_back(s);
            t.row()
                .cell(static_cast<std::int64_t>(bk))
                .cell(p, 5)
                .cell(s, 5);
            const std::string tag =
                "matmul_blockk" + std::to_string(bk);
            rep.metric(tag + "_pred_s", p, "s").nocheck();
            rep.metric(tag + "_meas_s", s, "s").nocheck();
        }
        const double corr = spearman(pred, meas);
        std::printf("%s\nmatmul blockK rank correlation: %.2f\n\n",
                    t.render().c_str(), corr);
        rep.metric("matmul_blockk_rank_corr", corr, "correlation")
            .nocheck();
    }

    // Engine shapes: one prefill, one KV-cache decode.
    ModelWorkloadSpec prefill;
    prefill.batch = 2;
    prefill.heads = 2;
    prefill.seq = opts.quick ? 256 : 512;
    prefill.queries = opts.quick ? 32 : 64;
    prefill.seed = opts.seedOr(0x50FA71E1ull);
    ModelWorkloadSpec decode = prefill;
    decode.pastLen = prefill.seq - 8;
    decode.newTokens = 8;
    decode.seed = opts.seedOr(0x50FA71E2ull);

    EngineConfig ecfg;
    ecfg.computeQuality = false; // the model scores 4 stages

    // Per-stage predicted vs measured on the prefill shape under the
    // default (fixed-knob) plan, via the stepped EngineRun path.
    {
        const ModelWorkload mw = generateModelWorkload(prefill);
        const TileShape shape =
            tileShape(prefill, ecfg.pipeline.topkFrac);
        TilePlan dplan;
        dplan.rowTile = ecfg.rowTile;
        dplan.sadsSpan = ecfg.rowTile;
        const double stage_pred[] = {
            model.dlzsSeconds(shape),
            model.sadsSeconds(dplan, shape),
            model.kvSeconds(shape),
            model.sufaSeconds(dplan, shape),
        };
        std::vector<HeadTask> tasks;
        for (int bi = 0; bi < mw.batch(); ++bi)
            for (int h = 0; h < mw.heads(); ++h) {
                HeadTask ht;
                ht.workload = &mw.head(bi, h);
                ht.batch = bi;
                ht.head = h;
                tasks.push_back(ht);
            }
        const Engine engine(ecfg);
        std::vector<std::string> names;
        std::vector<double> meas(4, 1e9);
        const int reps = opts.quick ? 3 : 5;
        for (int r = 0; r < reps; ++r) {
            EngineRun er(engine, tasks);
            names.clear();
            for (int s = 0; s < 4; ++s) {
                names.push_back(er.nextStageName());
                const double t0 = benchutil::now();
                er.step();
                meas[static_cast<std::size_t>(s)] = std::min(
                    meas[static_cast<std::size_t>(s)],
                    benchutil::now() - t0);
            }
            (void)er.finish();
        }
        Table t;
        t.column("stage", Align::Left)
            .column("pred s")
            .column("meas s");
        std::vector<double> pred;
        for (std::size_t s = 0; s < 4; ++s) {
            pred.push_back(stage_pred[s]);
            t.row().cell(names[s]).cell(pred[s], 5).cell(meas[s], 5);
            rep.metric("stage_" + names[s] + "_pred_s", pred[s], "s")
                .nocheck();
            rep.metric("stage_" + names[s] + "_meas_s", meas[s], "s")
                .nocheck();
        }
        const double corr = spearman(pred, meas);
        std::printf("%s\nper-stage rank correlation (prefill, "
                    "default plan): %.2f\n\n", t.render().c_str(),
                    corr);
        rep.metric("stage_rank_corr", corr, "correlation")
            .tol(0.0)
            .atol(0.45);
    }

    // Plan-grid sample: a deterministic stride through the grid per
    // shape, each candidate run under EngineConfig::fixedPlan.
    const struct
    {
        const char *name;
        const ModelWorkloadSpec *spec;
    } shapes[] = {{"prefill", &prefill}, {"decode", &decode}};
    for (const auto &sh : shapes) {
        const ModelWorkload mw = generateModelWorkload(*sh.spec);
        const TileShape shape =
            tileShape(*sh.spec, ecfg.pipeline.topkFrac);
        const std::vector<TilePlan> grid =
            tileSearchGrid(shape, model.machine());
        const std::size_t want = opts.quick ? 6 : 10;
        const std::size_t stride =
            std::max<std::size_t>(1, grid.size() / want);
        std::vector<double> pred, meas;
        for (std::size_t i = 0; i < grid.size(); i += stride) {
            EngineConfig cfg = ecfg;
            cfg.fixedPlan = grid[i];
            const double s = timeBest(
                [&] { (void)runEngine(mw, cfg); }, 0.15,
                opts.quick ? 3 : 5);
            pred.push_back(model.planSeconds(grid[i], shape));
            meas.push_back(s);
        }
        const double corr = spearman(pred, meas);
        std::printf("%s plan grid: %zu candidates measured of %zu, "
                    "rank correlation %.2f\n", sh.name, pred.size(),
                    grid.size(), corr);
        // Near-tied on few-core hosts (sharding barely matters), so
        // trajectory-only like the kernel sweeps.
        rep.metric(std::string(sh.name) + "_plan_rank_corr", corr,
                   "correlation")
            .nocheck();
    }

    // autoTile vs fixed defaults: the trajectory metric, plus the
    // tol-0 bits (bit-exact results, deterministic planner, describe
    // round-trip).
    {
        const ModelWorkload mw = generateModelWorkload(prefill);
        const TileShape shape =
            tileShape(prefill, ecfg.pipeline.topkFrac);
        const TilePlan plan = planTiles(shape, model);
        EngineConfig at = ecfg;
        at.autoTile = true;
        ScopedAutoTile follow(-1);
        EngineResult def_res, at_res;
        const double def_s = timeBest(
            [&] { def_res = runEngine(mw, ecfg); }, 0.25,
            opts.quick ? 3 : 6);
        const double at_s = timeBest(
            [&] { at_res = runEngine(mw, at); }, 0.25,
            opts.quick ? 3 : 6);
        const double speedup = def_s / at_s;
        const bool match = sameEngineResults(def_res, at_res);
        std::printf("autoTile plan %s\nautoTile: default %.4fs vs "
                    "planned %.4fs (%.2fx), results %s\n",
                    plan.describe().c_str(), def_s, at_s, speedup,
                    match ? "bit-exact" : "MISMATCH");
        rep.metric("autotile_default_seconds", def_s, "s").nocheck();
        rep.metric("autotile_planned_seconds", at_s, "s").nocheck();
        rep.metric("autotile_speedup", speedup, "ratio").nocheck();
        rep.metric("autotile_match", match ? 1.0 : 0.0, "bool")
            .tol(0.0);
        rep.metric("plan_deterministic",
                   planTiles(shape, model) == plan ? 1.0 : 0.0,
                   "bool")
            .tol(0.0);
        TilePlan parsed;
        const bool roundtrip =
            parseTilePlan(plan.describe(), &parsed) &&
            parsed == plan;
        rep.metric("plan_roundtrip", roundtrip ? 1.0 : 0.0, "bool")
            .tol(0.0);
        if (!match) {
            std::fprintf(stderr, "FAIL: autoTile diverged from the "
                                 "fixed-knob defaults\n");
            return 1;
        }
    }

    return 0;
}

} // namespace

SOFA_BENCH_MAIN("tiler", run)
