/**
 * @file
 * Fig. 17 — Normalized software complexity ladder at matched token
 * sparsity (loss <= 2%):
 *   4bit + vanilla sorting + FA-2        (baseline, 100%)
 *   DLZS + vanilla sorting + FA-2        (paper: -18%)
 *   DLZS + SADS + FA-2                   (paper: -25%)
 *   DLZS + SADS + SU-FA                  (paper: -28%)
 */

#include <cstdio>

#include "benchmain.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "model/suite.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== Fig. 17: normalized complexity reduction ===\n");
    std::printf("%-24s | %8s %8s %8s %8s\n", "Benchmark", "base",
                "+DLZS", "+SADS", "+SU-FA");

    const int queries = opts.quick ? 16 : 32;
    std::vector<double> r1s, r2s, r3s;
    for (const auto &b : suiteSmall()) {
        auto w = generateWorkload(b.workloadSpec(512, queries));
        const double keep = 0.2;

        auto base = runBaselinePipeline(w, keep);
        PipelineConfig cfg;
        cfg.topkFrac = keep;
        auto sofa_run = runSofaPipeline(w, cfg);

        OpCosts narrow = OpCosts::scaled(0.5);
        const double base_total =
            base.predictionOps.normalized(narrow) +
            base.sortOps.normalized() + base.formalOps.normalized();
        const double dlzs = sofa_run.predictionOps.normalized(narrow) +
                            base.sortOps.normalized() +
                            base.formalOps.normalized();
        const double dlzs_sads =
            sofa_run.predictionOps.normalized(narrow) +
            sofa_run.sortOps.normalized() +
            base.formalOps.normalized();
        const double full =
            sofa_run.predictionOps.normalized(narrow) +
            sofa_run.sortOps.normalized() +
            sofa_run.formalOps.normalized();

        std::printf("%-24s | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    b.name.c_str(), 100.0, 100.0 * dlzs / base_total,
                    100.0 * dlzs_sads / base_total,
                    100.0 * full / base_total);
        r1s.push_back(dlzs / base_total);
        r2s.push_back(dlzs_sads / base_total);
        r3s.push_back(full / base_total);
    }
    std::printf("\n%-24s | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                "GeoMean", 100.0, 100.0 * geomean(r1s),
                100.0 * geomean(r2s), 100.0 * geomean(r3s));
    std::printf("Paper: 100%% -> 82%% -> 75%% -> 72%%\n");

    // Op counts follow discrete top-k selections; keep a small
    // cross-toolchain margin.
    rep.metric("dlzs_rel_complexity", geomean(r1s), "fraction")
        .paper(0.82).tol(0.01);
    rep.metric("dlzs_sads_rel_complexity", geomean(r2s), "fraction")
        .paper(0.75).tol(0.01);
    rep.metric("full_rel_complexity", geomean(r3s), "fraction")
        .paper(0.72).tol(0.01);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig17_complexity", run)
