/**
 * @file
 * Fig. 3 — Memory access time (MAT) share for whole-row dynamic
 * sparsity accelerators (FACT, Energon; 2MB SRAM) as token
 * parallelism scales, on BERT-Large(512), GPT-2(1k), Bloom-3B(2k),
 * Llama-13B(4k).
 */

#include <cstdio>
#include <vector>

#include "arch/whole_row.h"
#include "benchmain.h"
#include "common/stats.h"
#include "model/config.h"

using namespace sofa;

namespace {

WholeRowConfig
makeCfg(const char *name, double gops)
{
    WholeRowConfig cfg;
    cfg.name = name;
    cfg.throughputGops = gops;
    cfg.sramBytes = 2 << 20;
    return cfg;
}

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::printf("=== Fig. 3: MAT share vs token parallelism "
                "(2MB SRAM) ===\n");

    struct Workload
    {
        const char *label;
        const char *slug;
        ModelConfig model;
        int seq;
        std::vector<std::int64_t> parallels;
    };
    std::vector<Workload> loads = {
        {"BERT-Large (512)", "bert_large", models::bertLarge(), 512,
         {1, 512}},
        {"GPT-2 (1k)", "gpt2", models::gpt2(), 1024, {1, 256}},
        {"Bloom-3B (2k)", "bloom3b", models::bloom3b(), 2048,
         {1, 128}},
        {"Llama-13B (4k)", "llama13b", models::llama13b(), 4096,
         {1, 8}},
    };
    std::vector<WholeRowConfig> accs = {makeCfg("FACT", 928.0),
                                        makeCfg("Energon", 1153.0)};

    std::vector<double> peak_ratios;
    for (const auto &wl : loads) {
        std::printf("\n%s\n", wl.label);
        std::printf("%-8s %6s | %10s %10s %8s\n", "Accel", "T",
                    "comp(us)", "mem(us)", "MAT%");
        for (const auto &acc : accs) {
            for (auto t : wl.parallels) {
                auto r = runWholeRow(acc, t, wl.seq,
                                     wl.model.headDim(),
                                     wl.model.heads);
                std::printf("%-8s %6lld | %10.1f %10.1f %7.1f%%\n",
                            acc.name.c_str(),
                            static_cast<long long>(t),
                            r.computeNs / 1e3, r.memoryNs / 1e3,
                            100.0 * r.matRatio());
                if (t == wl.parallels.back()) {
                    peak_ratios.push_back(r.matRatio());
                    rep.metric(std::string("mat_share_") +
                                   acc.name.c_str() + "_" + wl.slug,
                               r.matRatio(), "fraction");
                }
            }
        }
    }
    std::printf("\nAverage MAT share at max parallelism: %.1f%% "
                "(paper: ~72%%)\n",
                100.0 * mean(peak_ratios));
    rep.metric("mat_share_mean", mean(peak_ratios), "fraction")
        .paper(0.72);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig03_mat", run)
