/**
 * @file
 * Shared chrono timing harness for the self-contained bench binaries
 * (bench_kernels, bench_sim): steady-clock stamps and a best-of-reps
 * measurement that gives cheap kernels several samples while letting
 * multi-second runs execute once.
 */

#ifndef SOFA_BENCH_BENCHUTIL_H
#define SOFA_BENCH_BENCHUTIL_H

#include <algorithm>
#include <chrono>
#include <functional>

namespace sofa {
namespace benchutil {

inline double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps wall time of fn() in seconds. */
inline double
timeBest(const std::function<void()> &fn, double min_total = 0.6,
         int max_reps = 12)
{
    const double t0 = now();
    fn();
    double best = now() - t0;
    if (best >= min_total)
        return best;
    int reps = static_cast<int>(min_total / (best + 1e-9));
    reps = std::min(reps, max_reps - 1);
    for (int i = 0; i < reps; ++i) {
        const double s = now();
        fn();
        best = std::min(best, now() - s);
    }
    return best;
}

} // namespace benchutil
} // namespace sofa

#endif // SOFA_BENCH_BENCHUTIL_H
