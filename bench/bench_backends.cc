/**
 * @file
 * Multi-backend fleet benchmark: the serving scheduler routing an
 * open-loop mixed trace across a heterogeneous executor fleet
 * (serve/backend). Sweeps the EngineBackend count (1 -> 2 -> 4) and
 * reports measured aggregate Gop/s per fleet size (machine-dependent:
 * nocheck, trajectory family fleetN_gops), plus the deterministic
 * cycle-model scaling curve — each request priced on the arch/
 * accelerator model, round-robin assigned, fleet makespan = the
 * busiest backend's modeled seconds — which is golden-gated and
 * provably monotone for the 1/2/4 ladder (finer power-of-two
 * round-robin partitions only ever split a busiest group). Bit-
 * exactness vs a sequential per-request Engine::run loop, exact op
 * conservation and routed-placement balance are golden bits at tol 0
 * for every fleet size; a heterogeneous Engine+Sim+Analytic fleet
 * under Disaggregated routing re-checks the same contract, and a
 * what-if section prices the trace on the GPU/TPU roofline backends.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/table.h"
#include "serve/backend.h"
#include "serve/scheduler.h"
#include "model/config.h"

namespace {

using namespace sofa;
using serve::AnalyticBackend;
using serve::AnalyticBackendConfig;
using serve::AnalyticDevice;
using serve::Backend;
using serve::BackendStats;
using serve::EngineBackend;
using serve::EngineBackendConfig;
using serve::Outcome;
using serve::Request;
using serve::RequestKind;
using serve::RequestResult;
using serve::RoutingPolicy;
using serve::Scheduler;
using serve::SchedulerConfig;
using serve::SimBackend;
using serve::SimBackendConfig;

/** Wall-clock seconds of one fn() call. */
template <typename Fn>
double
timeTrace(const Fn &fn)
{
    const double t0 = benchutil::now();
    fn();
    return benchutil::now() - t0;
}

/** The grid of @p mw as explicit HeadTasks (for modeled pricing). */
std::vector<HeadTask>
gridTasks(const ModelWorkload &mw)
{
    std::vector<HeadTask> tasks;
    for (int b = 0; b < mw.batch(); ++b) {
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            t.pastLen = mw.spec.isDecode() ? mw.spec.pastLen : 0;
            tasks.push_back(t);
        }
    }
    return tasks;
}

/** Fleet of @p n EngineBackends sharing the scheduler's pool. */
std::vector<std::shared_ptr<Backend>>
engineFleet(int n, const EngineConfig &ecfg)
{
    std::vector<std::shared_ptr<Backend>> fleet;
    for (int i = 0; i < n; ++i) {
        EngineBackendConfig c;
        c.engine = ecfg;
        c.name = "engine" + std::to_string(i);
        fleet.push_back(std::make_shared<EngineBackend>(c));
    }
    return fleet;
}

/** Per-request modeled seconds on @p backend (priced at begin();
 * the run is abandoned before any compute happens). */
std::vector<double>
modeledSecondsPerRequest(Backend &backend,
                         const std::vector<ModelWorkload> &works)
{
    std::vector<double> modeled;
    modeled.reserve(works.size());
    for (const ModelWorkload &mw : works) {
        const std::vector<HeadTask> tasks = gridTasks(mw);
        auto run = backend.begin(tasks);
        double s = 0.0;
        for (std::size_t t = 0; t < tasks.size(); ++t)
            s += run->modeledTaskSeconds(t);
        modeled.push_back(s);
    }
    return modeled;
}

/** Round-robin fleet makespan: the busiest backend's modeled sum. */
double
roundRobinMakespan(const std::vector<double> &per_request, int fleet)
{
    std::vector<double> busy(static_cast<std::size_t>(fleet), 0.0);
    for (std::size_t i = 0; i < per_request.size(); ++i)
        busy[i % static_cast<std::size_t>(fleet)] += per_request[i];
    return *std::max_element(busy.begin(), busy.end());
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("multi-backend serving benchmark: executor fleet "
                "behind the scheduler (%d thread%s)\n\n",
                opts.threads, opts.threads == 1 ? "" : "s");

    const auto model = models::llama7b();
    const int n = opts.quick ? 12 : 24;
    const int ctx = opts.quick ? 128 : 256;
    const int heads = opts.quick ? 2 : 4;
    const std::uint64_t seed = opts.seedOr(0x50FAF1EEull);
    const std::vector<Request> trace = serve::mixedTrace(
        representativeScenarios(model), n, ArrivalPattern::Poisson,
        1e-3, seed, ctx, /*max_batch=*/1, heads);

    SchedulerConfig scfg;
    scfg.engine.pipeline.topkFrac = 0.2;
    scfg.engine.computeQuality = false; // throughput focus
    scfg.lanes = 2;
    scfg.headBudget = opts.quick ? 8 : 12;
    scfg.faultsFromEnv = false; // hermetic outcome counts

    // Sequential per-request reference: the bit-exactness anchor
    // and the op total every fleet must conserve exactly.
    Engine engine(scfg.engine);
    std::vector<ModelWorkload> works;
    works.reserve(trace.size());
    for (const Request &r : trace)
        works.push_back(generateModelWorkload(r.work));
    std::vector<EngineResult> seq(trace.size());
    const double seq_s = timeTrace([&] {
        for (std::size_t i = 0; i < trace.size(); ++i)
            seq[i] = engine.run(works[i]);
    });
    std::int64_t seq_ops = 0;
    double total_ops = 0.0;
    for (const EngineResult &r : seq) {
        seq_ops += r.totalOps().total();
        total_ops += static_cast<double>(r.totalOps().total());
    }
    rep.metric("seq_wall_s", seq_s, "s").nocheck();
    rep.metric("seq_gops", total_ops / seq_s / 1e9, "gops")
        .nocheck();
    rep.metric("trace_requests", static_cast<double>(trace.size()),
               "count").tol(0.0);

    // Deterministic cycle-model scaling ladder: per-request modeled
    // seconds from the arch/accelerator model, round-robin assigned
    // to the fleet; aggregate modeled Gop/s = ops / makespan. The
    // 1 -> 2 -> 4 ladder refines a power-of-two partition, so the
    // makespan never grows and the curve is monotone by
    // construction — golden-gated, machine-independent.
    SimBackendConfig sim_cfg;
    sim_cfg.engine = scfg.engine;
    SimBackend pricer(sim_cfg);
    const std::vector<double> modeled =
        modeledSecondsPerRequest(pricer, works);
    const std::vector<int> fleets = {1, 2, 4};
    std::vector<double> modeled_gops;
    for (int fleet : fleets) {
        const double makespan = roundRobinMakespan(modeled, fleet);
        modeled_gops.push_back(total_ops / makespan / 1e9);
        rep.metric("modeled_fleet" + std::to_string(fleet) + "_gops",
                   modeled_gops.back(), "gops").tol(1e-4);
    }
    const bool modeled_monotonic =
        modeled_gops[0] < modeled_gops[1] &&
        modeled_gops[1] < modeled_gops[2];
    rep.metric("modeled_scaling_monotonic",
               modeled_monotonic ? 1.0 : 0.0, "bool").tol(0.0);

    // Measured fleet sweep: open-loop replay (every request offered
    // immediately) across 1/2/4 EngineBackends under round-robin
    // placement. Wall-clock scaling is machine-dependent (one core
    // serializes the fleet), so measured Gop/s is trajectory-only;
    // the correctness bits are golden at tolerance 0.
    Table t;
    t.column("fleet", Align::Left)
        .column("wall s")
        .column("Gop/s")
        .column("modeled Gop/s")
        .column("routed/shard")
        .column("bit-exact");
    t.row()
        .cell("sequential")
        .cell(seq_s, 3)
        .cell(total_ops / seq_s / 1e9, 2)
        .cell("-")
        .cell("-")
        .cell("-");
    bool all_exact = true, all_conserved = true;
    for (std::size_t fi = 0; fi < fleets.size(); ++fi) {
        const int fleet = fleets[fi];
        SchedulerConfig cfg = scfg;
        cfg.backends = engineFleet(fleet, cfg.engine);
        cfg.routing = RoutingPolicy::RoundRobin;
        std::vector<RequestResult> results;
        std::vector<BackendStats> shards;
        serve::SchedulerStats stats;
        const double wall = timeTrace([&] {
            Scheduler sched(cfg);
            results = replayTrace(sched, trace, /*time_scale=*/0.0);
            sched.drain();
            shards = sched.backendStats();
            stats = sched.stats();
        });
        const double gops = total_ops / wall / 1e9;

        // Bit-exactness + exact op conservation vs the sequential
        // loop, whatever the placement.
        bool exact = true;
        std::int64_t fleet_ops = 0;
        int completed = 0;
        for (const RequestResult &r : results) {
            completed += r.outcome == Outcome::Completed ? 1 : 0;
            const EngineResult &ref = seq[r.id];
            fleet_ops += r.engine.totalOps().total();
            bool req_ok = r.outcome == Outcome::Completed &&
                          r.engine.heads.size() == ref.heads.size();
            for (std::size_t h = 0;
                 req_ok && h < ref.heads.size(); ++h) {
                const PipelineResult &a = r.engine.heads[h].result;
                const PipelineResult &b = ref.heads[h].result;
                req_ok = a.output == b.output &&
                         a.selections == b.selections &&
                         a.totalOps().total() ==
                             b.totalOps().total();
            }
            exact = exact && req_ok;
        }
        const bool conserved = fleet_ops == seq_ops;
        // Round-robin over n = fleet * k requests: every shard gets
        // exactly n / fleet placements.
        bool balanced = shards.size() ==
                        static_cast<std::size_t>(fleet);
        for (const BackendStats &b : shards)
            balanced = balanced &&
                       b.routed == static_cast<std::int64_t>(
                                       trace.size()) /
                                       fleet;
        all_exact = all_exact && exact;
        all_conserved = all_conserved && conserved;

        const std::string tag = "fleet" + std::to_string(fleet);
        t.row()
            .cell(tag)
            .cell(wall, 3)
            .cell(gops, 2)
            .cell(modeled_gops[fi], 2)
            .cell(static_cast<double>(trace.size()) /
                      static_cast<double>(fleet),
                  0)
            .cell(exact ? "yes" : "NO");
        rep.metric(tag + "_wall_s", wall, "s").nocheck();
        rep.metric(tag + "_gops", gops, "gops").nocheck();
        rep.metric(tag + "_completed",
                   static_cast<double>(completed), "count").tol(0.0);
        rep.metric(tag + "_bitexact_vs_sequential",
                   exact ? 1.0 : 0.0, "bool").tol(0.0);
        rep.metric(tag + "_ops_conserved", conserved ? 1.0 : 0.0,
                   "bool").tol(0.0);
        rep.metric(tag + "_routed_balanced", balanced ? 1.0 : 0.0,
                   "bool").tol(0.0);
        if (stats.shed + stats.timedOut + stats.failed != 0) {
            std::fprintf(stderr, "FAIL: fleet %d lost requests\n",
                         fleet);
            return 1;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("modeled fleet scaling (cycle model, round-robin "
                "makespan): %.2f -> %.2f -> %.2f Gop/s (%s)\n\n",
                modeled_gops[0], modeled_gops[1], modeled_gops[2],
                modeled_monotonic ? "monotonic" : "NOT MONOTONIC");
    if (!all_exact || !all_conserved || !modeled_monotonic) {
        std::fprintf(stderr, "FAIL: fleet sweep broke bit-exactness,"
                             " op conservation or modeled scaling\n");
        return 1;
    }

    // Heterogeneous fleet: a measured engine, a cycle-model
    // simulator (prefill-only: the disaggregation class) and an
    // analytic GPU — Disaggregated routing pins decodes to the
    // KV-cache-warm shards. The bit-exactness contract must hold
    // for the mixed fleet exactly as for the homogeneous one.
    {
        SchedulerConfig cfg = scfg;
        cfg.routing = RoutingPolicy::Disaggregated;
        cfg.startPaused = true; // deterministic placement
        EngineBackendConfig e;
        e.engine = cfg.engine;
        e.name = "engine";
        cfg.backends.push_back(std::make_shared<EngineBackend>(e));
        SimBackendConfig s;
        s.engine = cfg.engine;
        s.caps.supportsDecode = false; // dedicated prefill shard
        s.name = "sim-prefill";
        cfg.backends.push_back(std::make_shared<SimBackend>(s));
        AnalyticBackendConfig a;
        a.engine = cfg.engine;
        a.name = "gpu-whatif";
        cfg.backends.push_back(std::make_shared<AnalyticBackend>(a));

        Scheduler sched(cfg);
        std::vector<std::future<RequestResult>> futs;
        for (const Request &r : trace)
            futs.push_back(sched.submit(r));
        sched.drain();
        bool exact = true, disagg_ok = true;
        int completed = 0;
        for (auto &f : futs) {
            const RequestResult r = f.get();
            completed += r.outcome == Outcome::Completed ? 1 : 0;
            const EngineResult &ref = seq[r.id];
            bool req_ok = r.outcome == Outcome::Completed &&
                          r.engine.totalOps().total() ==
                              ref.totalOps().total() &&
                          r.engine.heads.size() == ref.heads.size();
            for (std::size_t h = 0;
                 req_ok && h < ref.heads.size(); ++h)
                req_ok = r.engine.heads[h].result.output ==
                         ref.heads[h].result.output;
            exact = exact && req_ok;
            // Shard 1 is prefill-only: no decode may land there.
            if (r.kind == RequestKind::Decode)
                disagg_ok = disagg_ok && r.backend != 1;
        }
        std::printf("heterogeneous fleet (engine + sim + analytic, "
                    "disaggregated): %d/%d completed, %s, decode "
                    "placement %s\n",
                    completed, n,
                    exact ? "bit-exact" : "MISMATCH",
                    disagg_ok ? "respected" : "VIOLATED");
        rep.metric("hetero_completed",
                   static_cast<double>(completed), "count").tol(0.0);
        rep.metric("hetero_bitexact", exact ? 1.0 : 0.0, "bool")
            .tol(0.0);
        rep.metric("hetero_disagg_respected", disagg_ok ? 1.0 : 0.0,
                   "bool").tol(0.0);
        if (!exact || !disagg_ok)
            return 1;
    }

    // What-if routing: the same trace priced end-to-end on the
    // analytic GPU and TPU roofline backends (serial modeled
    // seconds). Deterministic in the seed — golden-gated.
    {
        AnalyticBackendConfig g;
        g.engine = scfg.engine;
        AnalyticBackend gpu(g);
        AnalyticBackendConfig tp;
        tp.engine = scfg.engine;
        tp.device = AnalyticDevice::TPU;
        AnalyticBackend tpu(tp);
        double gpu_s = 0.0, tpu_s = 0.0;
        for (double s : modeledSecondsPerRequest(gpu, works))
            gpu_s += s;
        for (double s : modeledSecondsPerRequest(tpu, works))
            tpu_s += s;
        std::printf("what-if roofline pricing: %s %.2f modeled "
                    "Gop/s, %s %.2f modeled Gop/s\n",
                    gpu.name().c_str(), total_ops / gpu_s / 1e9,
                    tpu.name().c_str(), total_ops / tpu_s / 1e9);
        rep.metric("whatif_gpu_gops", total_ops / gpu_s / 1e9,
                   "gops").tol(1e-4);
        rep.metric("whatif_tpu_gops", total_ops / tpu_s / 1e9,
                   "gops").tol(1e-4);
    }

    return 0;
}

} // namespace

SOFA_BENCH_MAIN("backends", run)
