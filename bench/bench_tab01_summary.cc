/**
 * @file
 * Table I — qualitative optimization coverage of SOTA Transformer
 * accelerators (compute / memory / cross-stage, QKV / attention).
 */

#include <cstdio>

#include "baselines/sota.h"
#include "benchmain.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    struct Row
    {
        const char *name;
        bool qkv_c, att_c, qkv_m;
        const char *att_m;
        bool cross;
    };
    // Transcribed from Table I.
    const Row rows[] = {
        {"A3", false, true, false, "x", false},
        {"ELSA", false, true, false, "x", false},
        {"Sanger", false, true, false, "x", false},
        {"DOTA", false, true, false, "x", false},
        {"Energon", false, true, false, "Low", false},
        {"DTATrans", false, true, false, "x", false},
        {"SpAtten", true, true, false, "Low", false},
        {"FACT", true, true, false, "x", false},
        {"SOFA", true, true, true, "Yes", true},
    };

    std::printf("=== Table I: optimization coverage ===\n");
    std::printf("%-10s | %9s %9s | %9s %9s | %s\n", "Accel",
                "QKV-comp", "Att-comp", "QKV-mem", "Att-mem",
                "Cross-stage");
    int cross_stage = 0, full_coverage = 0;
    for (const auto &r : rows) {
        std::printf("%-10s | %9s %9s | %9s %9s | %s\n", r.name,
                    r.qkv_c ? "yes" : "x", r.att_c ? "yes" : "x",
                    r.qkv_m ? "yes" : "x", r.att_m,
                    r.cross ? "yes" : "x");
        cross_stage += r.cross ? 1 : 0;
        if (r.qkv_c && r.att_c && r.qkv_m && r.cross)
            ++full_coverage;
    }
    std::printf("\nOnly SOFA covers compute + memory across stages "
                "(the paper's Table I claim).\n");

    rep.metric("accelerators", sizeof(rows) / sizeof(rows[0]),
               "count").tol(0.0);
    // The Table I claim: exactly one design (SOFA) covers compute +
    // memory across both stages.
    rep.metric("cross_stage_designs", cross_stage, "count")
        .paper(1).tol(0.0);
    rep.metric("full_coverage_designs", full_coverage, "count")
        .paper(1).tol(0.0);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("tab01_summary", run)
