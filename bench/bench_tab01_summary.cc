/**
 * @file
 * Table I — qualitative optimization coverage of SOTA Transformer
 * accelerators (compute / memory / cross-stage, QKV / attention).
 */

#include <cstdio>

#include "baselines/sota.h"

using namespace sofa;

int
main()
{
    struct Row
    {
        const char *name;
        bool qkv_c, att_c, qkv_m;
        const char *att_m;
        bool cross;
    };
    // Transcribed from Table I.
    const Row rows[] = {
        {"A3", false, true, false, "x", false},
        {"ELSA", false, true, false, "x", false},
        {"Sanger", false, true, false, "x", false},
        {"DOTA", false, true, false, "x", false},
        {"Energon", false, true, false, "Low", false},
        {"DTATrans", false, true, false, "x", false},
        {"SpAtten", true, true, false, "Low", false},
        {"FACT", true, true, false, "x", false},
        {"SOFA", true, true, true, "Yes", true},
    };

    std::printf("=== Table I: optimization coverage ===\n");
    std::printf("%-10s | %9s %9s | %9s %9s | %s\n", "Accel",
                "QKV-comp", "Att-comp", "QKV-mem", "Att-mem",
                "Cross-stage");
    for (const auto &r : rows) {
        std::printf("%-10s | %9s %9s | %9s %9s | %s\n", r.name,
                    r.qkv_c ? "yes" : "x", r.att_c ? "yes" : "x",
                    r.qkv_m ? "yes" : "x", r.att_m,
                    r.cross ? "yes" : "x");
    }
    std::printf("\nOnly SOFA covers compute + memory across stages "
                "(the paper's Table I claim).\n");
    return 0;
}
