/**
 * @file
 * Table IV — device-level power split (core / memory interface /
 * DRAM) at the 59.8 GB/s operating point, plus the bandwidth scaling
 * of the memory-side power.
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "benchmain.h"
#include "energy/area_model.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::printf("=== Table IV: SOFA power breakdown ===\n");
    DevicePower p;
    std::printf("%-18s | %8s\n", "Component", "Power[W]");
    std::printf("%-18s | %8.2f\n", "Core", p.coreW);
    std::printf("%-18s | %8.2f\n", "Memory interface", p.interfaceW);
    std::printf("%-18s | %8.2f\n", "DRAM", p.dramW);
    std::printf("%-18s | %8.2f  (at 59.8 GB/s)\n", "Overall",
                p.totalW());

    std::printf("\nBandwidth scaling of the memory side:\n");
    std::printf("%10s | %8s %8s %8s\n", "GB/s", "intf", "dram",
                "total");
    for (double bw : {15.0, 29.9, 59.8, 119.6}) {
        DevicePower q = DevicePower::atBandwidth(bw);
        std::printf("%10.1f | %8.2f %8.2f %8.2f\n", bw, q.interfaceW,
                    q.dramW, q.totalW());
    }

    // Cross-check: the simulator's achieved bandwidth demand on a
    // Llama-7B-like slice sits near the Table IV operating point.
    SofaAccelerator acc;
    AttentionShape shape;
    shape.queries = 128;
    shape.seq = 4096;
    shape.headDim = 128;
    shape.heads = 32;
    auto r = acc.run(shape);
    const double demand_gbps = r.dramBytes / r.timeNs;
    std::printf("\nSimulated DRAM demand on Llama-7B slice: "
                "%.1f GB/s (paper anchors Table IV at 59.8)\n",
                demand_gbps);

    rep.metric("core_w", p.coreW, "w");
    rep.metric("interface_w", p.interfaceW, "w");
    rep.metric("dram_w", p.dramW, "w");
    rep.metric("total_w", p.totalW(), "w");
    rep.metric("total_w_at_119_6", DevicePower::atBandwidth(119.6)
               .totalW(), "w");
    rep.metric("sim_dram_demand_gbps", demand_gbps, "gbps")
        .paper(59.8).tol(0.01);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("tab04_power", run)
