/**
 * @file
 * Fig. 19 — Throughput gain of SOFA over the A100 GPU model:
 * (a) SOFA vs GPU at 0% / 1% / 2% accuracy loss across the suite
 * (paper geomean: 6.1x / 7.2x / 9.5x);
 * (b) GPU LP / LP+FA1 / LP+FA2 vs SOFA at 2% loss
 * (paper: 1.76x / 2.7x / 3.2x vs 9.5x).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "benchmain.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "model/suite.h"

using namespace sofa;

namespace {

AttentionShape
shapeFor(const Benchmark &b)
{
    AttentionShape s;
    // LTPP prefill: the whole context is processed at once (T = S,
    // capped at the paper's largest evaluated parallelism).
    s.queries = std::min(b.seq, 2048);
    s.seq = b.seq;
    s.headDim = b.model.headDim();
    s.heads = b.model.heads;
    s.tokenDim = 128;
    return s;
}

/** Keep fraction at a loss target, measured on the workload. */
double
keepFor(const Benchmark &b, double loss)
{
    auto w = generateWorkload(b.workloadSpec(384, 16));
    PipelineConfig cfg;
    return std::max(0.03, minimalKeepFraction(w, cfg, loss));
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    GpuModel gpu;
    // Quick tier: 6-benchmark subset (golden-gated CI); full run:
    // the paper's 20-benchmark suite.
    const auto suite = opts.quick ? suiteSmall() : suite20();

    std::printf("=== Fig. 19(a): SOFA speedup over A100 (dense) ===\n");
    std::printf("%-24s | %8s %8s %8s\n", "Benchmark", "0%", "1%",
                "2%");
    std::vector<double> gains[3];
    const double losses[3] = {0.25, 1.0, 2.0};
    for (const auto &b : suite) {
        auto shape = shapeFor(b);
        const double gpu_ns = gpu.run(shape, GpuMode::Dense).timeNs;
        double row[3];
        for (int i = 0; i < 3; ++i) {
            SofaConfig cfg;
            cfg.topkFrac = keepFor(b, losses[i]);
            SofaAccelerator acc(cfg);
            row[i] = gpu_ns / acc.run(shape).timeNs;
            gains[i].push_back(row[i]);
        }
        std::printf("%-24s | %7.2fx %7.2fx %7.2fx\n", b.name.c_str(),
                    row[0], row[1], row[2]);
    }
    std::printf("%-24s | %7.2fx %7.2fx %7.2fx  (paper: 6.1/7.2/9.5)\n",
                "GeoMean", geomean(gains[0]), geomean(gains[1]),
                geomean(gains[2]));

    std::printf("\n=== Fig. 19(b): GPU software modes vs SOFA "
                "(2%% loss) ===\n");
    std::vector<double> lp_g, fa1_g, fa2_g, sofa_g;
    for (const auto &b : suite) {
        auto shape = shapeFor(b);
        const double keep = keepFor(b, 2.0);
        const double dense = gpu.run(shape, GpuMode::Dense).timeNs;
        lp_g.push_back(dense /
                       gpu.run(shape, GpuMode::LP, keep).timeNs);
        fa1_g.push_back(
            dense / gpu.run(shape, GpuMode::LPFlash1, keep).timeNs);
        fa2_g.push_back(
            dense / gpu.run(shape, GpuMode::LPFlash2, keep).timeNs);
        SofaConfig cfg;
        cfg.topkFrac = keep;
        SofaAccelerator acc(cfg);
        sofa_g.push_back(dense / acc.run(shape).timeNs);
    }
    std::printf("GPU LP        : %6.2fx (paper 1.76x)\n",
                geomean(lp_g));
    std::printf("GPU LP + FA-1 : %6.2fx (paper ~2.7x)\n",
                geomean(fa1_g));
    std::printf("GPU LP + FA-2 : %6.2fx (paper ~3.2x)\n",
                geomean(fa2_g));
    std::printf("SOFA          : %6.2fx (paper 9.5x)\n",
                geomean(sofa_g));

    // keepFor's discrete grid can shift one step across toolchains,
    // which moves every downstream ratio; 5% covers that.
    rep.metric("sofa_speedup_loss0", geomean(gains[0]), "ratio")
        .paper(6.1).tol(0.05);
    rep.metric("sofa_speedup_loss1", geomean(gains[1]), "ratio")
        .paper(7.2).tol(0.05);
    rep.metric("sofa_speedup_loss2", geomean(gains[2]), "ratio")
        .paper(9.5).tol(0.05);
    rep.metric("gpu_lp_speedup", geomean(lp_g), "ratio")
        .paper(1.76).tol(0.05);
    rep.metric("gpu_lp_fa1_speedup", geomean(fa1_g), "ratio")
        .paper(2.7).tol(0.05);
    rep.metric("gpu_lp_fa2_speedup", geomean(fa2_g), "ratio")
        .paper(3.2).tol(0.05);
    rep.metric("sofa_speedup_2pct_modes", geomean(sofa_g), "ratio")
        .paper(9.5).tol(0.05);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig19_throughput", run)
