/**
 * @file
 * Ablation — SU-FA update order (Fig. 10): descending vs ascending
 * vs sparse FA-2 complexity on executed kernels, and the sensitivity
 * of descending's advantage to prediction ordering noise.
 */

#include <cstdio>

#include "benchmain.h"
#include "common/stats.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "sparsity/topk.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== SU-FA order ablation ===\n");
    std::printf("%8s %6s | %12s %12s %12s | %10s %10s\n", "S", "k",
                "desc", "asc", "sparse-FA2", "d/f ratio",
                "d/a ratio");

    for (int seq : {512, 1024, 2048}) {
        WorkloadSpec spec;
        spec.seq = seq;
        spec.queries = 16;
        spec.headDim = 64;
        spec.tokenDim = 64;
        spec.seed = opts.seedOr(0xAB1 + seq);
        auto w = generateWorkload(spec);
        const int k = seq / 4;
        auto sel = exactTopKRows(w.scores, k);

        SufaConfig desc, asc;
        asc.order = SufaOrder::Ascending;
        auto rd = sufaAttention(w.q, w.k, w.v, sel, desc);
        auto ra = sufaAttention(w.q, w.k, w.v, sel, asc);
        auto rf = sparseFlash2(w.q, w.k, w.v, sel, 4);

        const double d = rd.ops.normalized();
        const double a = ra.ops.normalized();
        const double f = rf.ops.normalized();
        std::printf("%8d %6d | %12.0f %12.0f %12.0f | %9.1f%% "
                    "%9.1f%%\n",
                    seq, k, d, a, f, 100.0 * (1.0 - d / f),
                    100.0 * (1.0 - d / a));
        if (seq == 1024) {
            rep.metric("desc_vs_fa2_saving", 1.0 - d / f,
                       "fraction").paper(0.25).tol(0.01);
            rep.metric("desc_vs_asc_saving", 1.0 - d / a,
                       "fraction").paper(0.11).tol(0.01);
        }
    }
    std::printf("\nPaper: descending reduces ~25%% vs traditional FA "
                "and ~11%% vs ascending\n(softmax-side ops; MAC-"
                "dominated totals dilute the ratio).\n");

    std::printf("\n--- sensitivity to prediction-order noise ---\n");
    WorkloadSpec spec;
    spec.seq = 1024;
    spec.queries = 32;
    spec.seed = opts.seedOr(spec.seed);
    auto w = generateWorkload(spec);
    auto sel = exactTopKRows(w.scores, 256);
    Rng rng(opts.seedOr(17));
    std::printf("%12s | %12s %14s\n", "swap frac", "violations",
                "extra energy ops");
    for (double noise : {0.0, 0.05, 0.2, 0.5}) {
        SelectionList noisy = sel;
        for (auto &row : noisy) {
            const int swaps =
                static_cast<int>(noise * row.size());
            for (int s = 0; s < swaps; ++s) {
                auto i = static_cast<std::size_t>(
                    rng.uniformInt(0, row.size() - 1));
                auto j = static_cast<std::size_t>(
                    rng.uniformInt(0, row.size() - 1));
                std::swap(row[i], row[j]);
            }
        }
        auto r = sufaAttention(w.q, w.k, w.v, noisy, {});
        std::printf("%12.2f | %12lld %14lld\n", noise,
                    static_cast<long long>(r.maxViolations),
                    static_cast<long long>(r.ops.exps()));
        if (noise == 0.0) {
            // Perfectly ordered input: the max-ensuring circuit
            // should see zero violations.
            rep.metric("violations_noise0",
                       static_cast<double>(r.maxViolations), "count")
                .tol(0.0).atol(0.5);
        }
        if (noise == 0.5) {
            rep.metric("violations_noise50",
                       static_cast<double>(r.maxViolations), "count")
                .tol(0.05);
        }
    }
    std::printf("\nMax-ensure keeps results exact at every noise "
                "level; cost degrades gracefully.\n");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("ablation_sufa_order", run)
