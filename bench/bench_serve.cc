/**
 * @file
 * Serving-scheduler benchmark: the asynchronous request scheduler
 * (serve/scheduler) running a mixed prefill + KV-cache-decode trace
 * through the stage engine. Sweeps offered load (closed-loop window
 * of outstanding requests) and reports achieved Gop/s, p50/p95/p99
 * request latency and queue depth per load point, compares against
 * a sequential per-request Engine::run loop (the scheduler must not
 * be slower once >= 2 requests are concurrent), verifies per-request
 * results are bit-exact vs that sequential baseline, and runs a
 * deterministic admission/shedding experiment (paused scheduler,
 * burst beyond the queue capacity). A seeded fault sweep (one
 * transient failure, one permanent failure, one slowdown racing a
 * deadline) gates the outcome-count fingerprint and its replay
 * determinism, and a graceful-degradation experiment quantifies the
 * reduced-keep-span quality/latency trade. Timings and latency
 * percentiles are machine-dependent (nocheck, trajectory only);
 * request counts, shed counts, outcome counts, op totals and the
 * exactness bits are golden-gated.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "model/config.h"
#include "serve/scheduler.h"

namespace {

using namespace sofa;
using serve::Outcome;
using serve::Request;
using serve::RequestKind;
using serve::RequestResult;
using serve::Scheduler;
using serve::SchedulerConfig;

/** Wall-clock seconds of one fn() call (one whole trace pass). */
template <typename Fn>
double
timeTrace(const Fn &fn)
{
    const double t0 = benchutil::now();
    fn();
    return benchutil::now() - t0;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("serving scheduler benchmark: continuous batching "
                "over the stage engine (%d thread%s)\n\n",
                opts.threads, opts.threads == 1 ? "" : "s");

    // Mixed trace: the four serving regimes round-robin, Poisson
    // arrivals (arrival offsets matter only for open-loop replay;
    // the sweep below is closed-loop).
    const auto model = models::llama7b();
    const int n = opts.quick ? 12 : 24;
    const int ctx = opts.quick ? 128 : 256;
    const int heads = opts.quick ? 2 : 4;
    const std::uint64_t seed = opts.seedOr(0x50FA5E00ull);
    const std::vector<Request> trace = serve::mixedTrace(
        representativeScenarios(model), n, ArrivalPattern::Poisson,
        1e-3, seed, ctx, /*max_batch=*/1, heads);

    SchedulerConfig scfg;
    scfg.engine.pipeline.topkFrac = 0.2;
    scfg.engine.computeQuality = false; // throughput focus
    scfg.lanes = 2;
    scfg.headBudget = opts.quick ? 8 : 12;

    // Interleaved rounds: every round times the sequential
    // per-request Engine::run loop and every offered-load point
    // back to back, so machine-wide drift (frequency scaling,
    // background load) hits all configurations equally and the
    // throughput criterion below compares paired samples.
    Engine engine(scfg.engine);
    std::vector<EngineResult> seq(trace.size());
    const int rounds = opts.quick ? 3 : 2;
    const std::vector<int> loads = {1, 2, 4};
    std::vector<double> seq_rounds;
    std::vector<std::vector<double>> load_rounds(loads.size());
    std::vector<std::vector<RequestResult>> results(loads.size());
    std::vector<serve::SchedulerStats> stats(loads.size());
    for (int round = 0; round < rounds; ++round) {
        seq_rounds.push_back(timeTrace([&] {
            for (std::size_t i = 0; i < trace.size(); ++i)
                seq[i] = engine.run(
                    generateModelWorkload(trace[i].work));
        }));
        for (std::size_t li = 0; li < loads.size(); ++li) {
            load_rounds[li].push_back(timeTrace([&] {
                // Fresh scheduler per pass: batching state and
                // stats must not leak between timed passes.
                Scheduler sched(scfg);
                results[li] =
                    runClosedLoop(sched, trace, loads[li]);
                stats[li] = sched.stats();
            }));
        }
    }
    const double seq_s =
        *std::min_element(seq_rounds.begin(), seq_rounds.end());
    double total_ops = 0.0, prefill_formal = 0.0, formal = 0.0;
    std::int64_t total_ops_exact = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        total_ops += static_cast<double>(seq[i].totalOps().total());
        total_ops_exact += seq[i].totalOps().total();
        const double f = seq[i].formalOps.normalized();
        formal += f;
        if (trace[i].kind() == RequestKind::Prefill)
            prefill_formal += f;
    }
    const double seq_gops = total_ops / seq_s / 1e9;

    Table t;
    t.column("offered load", Align::Left)
        .column("wall s")
        .column("Gop/s")
        .column("p50 ms")
        .column("p95 ms")
        .column("p99 ms")
        .column("max queue")
        .column("req/batch");
    t.row()
        .cell("sequential loop")
        .cell(seq_s, 3)
        .cell(seq_gops, 2)
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("-");
    for (std::size_t li = 0; li < loads.size(); ++li) {
        const double wall = *std::min_element(
            load_rounds[li].begin(), load_rounds[li].end());
        std::vector<double> lat;
        for (const RequestResult &r : results[li])
            lat.push_back(r.totalSeconds);
        const double p50 = percentile(lat, 0.50);
        const double p95 = percentile(lat, 0.95);
        const double p99 = percentile(lat, 0.99);
        const double gops = total_ops / wall / 1e9;
        const std::string tag =
            "load" + std::to_string(loads[li]);
        t.row()
            .cell(tag)
            .cell(wall, 3)
            .cell(gops, 2)
            .cell(1e3 * p50, 2)
            .cell(1e3 * p95, 2)
            .cell(1e3 * p99, 2)
            .cell(stats[li].maxQueueDepth)
            .cell(stats[li].meanBatchRequests, 2);
        rep.metric(tag + "_wall_s", wall, "s").nocheck();
        rep.metric(tag + "_gops", gops, "gops").nocheck();
        rep.metric(tag + "_latency_p50_s", p50, "s").nocheck();
        rep.metric(tag + "_latency_p95_s", p95, "s").nocheck();
        rep.metric(tag + "_latency_p99_s", p99, "s").nocheck();
        rep.metric(tag + "_max_queue_depth",
                   static_cast<double>(stats[li].maxQueueDepth),
                   "requests").nocheck();
    }
    std::printf("%s\n", t.render().c_str());
    std::vector<RequestResult> exact_results =
        std::move(results[1]); // the load-2 run

    // The serving criterion: with >= 2 requests concurrently
    // offered, the scheduler must not be slower than serving them
    // one by one (its floor; on a single-core host parity is the
    // theoretical optimum), and on multi-core hosts the merged
    // batches pull clearly ahead. Median of the per-round paired
    // ratios: pairing cancels drift that best-of-N cannot.
    std::vector<double> ratios;
    for (int r = 0; r < rounds; ++r) {
        const double loaded =
            std::min(load_rounds[1][static_cast<std::size_t>(r)],
                     load_rounds[2][static_cast<std::size_t>(r)]);
        ratios.push_back(
            seq_rounds[static_cast<std::size_t>(r)] / loaded);
    }
    const double speedup = percentile(ratios, 0.5);
    std::printf("scheduler vs sequential loop at offered load >= 2: "
                "%.2fx throughput (%s)\n", speedup,
                speedup >= 0.995
                    ? "scheduler >= sequential"
                    : speedup >= 0.95
                          ? "parity within timing noise"
                          : "SLOWER — investigate");
    rep.metric("seq_wall_s", seq_s, "s").nocheck();
    rep.metric("seq_gops", seq_gops, "gops").nocheck();
    rep.metric("sched_speedup_loaded", speedup, "ratio").nocheck();

    // Per-request bit-exactness vs the sequential baseline: the
    // determinism contract — co-scheduling must not change numbers.
    {
        bool exact = true;
        std::int64_t sched_ops = 0;
        for (const RequestResult &r : exact_results) {
            const EngineResult &ref = seq[r.id];
            sched_ops += r.engine.totalOps().total();
            bool req_ok = r.outcome == Outcome::Completed &&
                          r.engine.heads.size() == ref.heads.size();
            for (std::size_t h = 0;
                 req_ok && h < ref.heads.size(); ++h) {
                const PipelineResult &a = r.engine.heads[h].result;
                const PipelineResult &b = ref.heads[h].result;
                req_ok = a.output == b.output &&
                         a.selections == b.selections &&
                         a.totalOps().total() ==
                             b.totalOps().total() &&
                         a.keysGenerated == b.keysGenerated;
            }
            exact = exact && req_ok;
        }
        const bool ops_match = sched_ops == total_ops_exact;
        std::printf("per-request results vs sequential loop: %s; "
                    "merged op counters: %s\n",
                    exact ? "bit-exact" : "MISMATCH",
                    ops_match ? "identical" : "MISMATCH");
        rep.metric("sched_bitexact_vs_sequential",
                   exact ? 1.0 : 0.0, "bool").tol(0.0);
        rep.metric("sched_ops_match_sequential",
                   ops_match ? 1.0 : 0.0, "bool").tol(0.0);
        if (!exact || !ops_match) {
            std::fprintf(stderr, "FAIL: scheduler diverged from the "
                                 "sequential engine loop\n");
            return 1;
        }
    }

    // Trace-level analytic metrics (golden-gated: deterministic in
    // the seed, tolerance absorbs FP-contraction selection flips).
    rep.metric("trace_requests", static_cast<double>(trace.size()),
               "count").tol(0.0);
    rep.metric("trace_total_gop", total_ops / 1e9, "gop").tol(0.02);
    rep.metric("prefill_formal_share", prefill_formal / formal,
               "fraction").tol(0.02);

    // Deterministic admission experiment: a paused scheduler admits
    // up to maxQueue, sheds the burst overflow explicitly, and
    // completes every admitted request once started.
    {
        SchedulerConfig burst_cfg = scfg;
        burst_cfg.maxQueue = 4;
        burst_cfg.startPaused = true;
        Scheduler sched(burst_cfg);
        std::vector<std::future<RequestResult>> futs;
        const std::vector<Request> burst = serve::mixedTrace(
            representativeScenarios(model), 10,
            ArrivalPattern::Burst, 0.0, seed + 1, 64, 1, 2);
        for (const Request &r : burst)
            futs.push_back(sched.submit(r));
        sched.drain();
        int shed = 0, completed = 0;
        for (auto &f : futs) {
            const RequestResult r = f.get();
            shed += r.outcome == Outcome::Shed ? 1 : 0;
            completed += r.outcome == Outcome::Completed ? 1 : 0;
        }
        const serve::SchedulerStats st = sched.stats();
        std::printf("burst admission (10 requests, capacity 4): "
                    "%d completed, %d shed (stats: %lld/%lld)\n",
                    completed, shed,
                    static_cast<long long>(st.completed),
                    static_cast<long long>(st.shed));
        rep.metric("burst_shed", static_cast<double>(shed), "count")
            .tol(0.0);
        rep.metric("burst_completed",
                   static_cast<double>(completed), "count").tol(0.0);
    }

    // Deterministic fault sweep: a seeded common/faultplan injects
    // one transient failure (recovered by solo retry), one permanent
    // failure (retry budget exhausted -> Failed) and one slowdown
    // that loses against its request's deadline (-> TimedOut). The
    // outcome-count fingerprint is golden-gated at tolerance 0, the
    // sweep is run twice to assert bit-identical replay, and every
    // Completed result must match a standalone Engine::run.
    {
        std::vector<Request> ftrace = serve::mixedTrace(
            representativeScenarios(model), 12,
            ArrivalPattern::Burst, 0.0, seed + 2, 64, 1, 2);
        ftrace[5].deadlineSeconds = 5e-3; // vs the 40 ms slowdown

        SchedulerConfig fcfg;
        fcfg.engine = scfg.engine;
        fcfg.lanes = 2;
        fcfg.headBudget = 8; // 4 two-head requests per merged run
        fcfg.startPaused = true;
        fcfg.faultsFromEnv = false; // hermetic: SOFA_FAULTS ignored
        fcfg.faults = FaultPlan::parse(
            "fail:req=1:stage=sads_topk:attempt<2;"
            "fail:req=3:stage=sufa_attention;"
            "slow:req=5:stage=dlzs_predict:ms=40");
        fcfg.retry.baseSeconds = 1e-6; // keep backoff sleeps small
        fcfg.retry.maxSeconds = 1e-4;

        serve::SchedulerStats fstats[2];
        std::vector<RequestResult> fres[2];
        double fwall = 0.0;
        for (int pass = 0; pass < 2; ++pass) {
            fwall = timeTrace([&] {
                Scheduler sched(fcfg);
                std::vector<std::future<RequestResult>> futs;
                for (const Request &r : ftrace)
                    futs.push_back(sched.submit(r));
                sched.drain();
                for (auto &f : futs)
                    fres[pass].push_back(f.get());
                fstats[pass] = sched.stats();
            });
        }

        // Replay determinism: identical outcome counts, identical
        // per-request outcomes, bit-identical surviving numbers.
        const serve::SchedulerStats &a = fstats[0];
        const serve::SchedulerStats &b = fstats[1];
        bool replay_ok =
            a.completed == b.completed && a.degraded == b.degraded &&
            a.shed == b.shed && a.timedOut == b.timedOut &&
            a.failed == b.failed && a.retried == b.retried;
        for (std::size_t i = 0; i < ftrace.size(); ++i) {
            const RequestResult &r0 = fres[0][i];
            const RequestResult &r1 = fres[1][i];
            replay_ok = replay_ok && r0.outcome == r1.outcome;
            if (r0.outcome != Outcome::Completed ||
                r1.outcome != Outcome::Completed)
                continue;
            replay_ok =
                replay_ok &&
                r0.engine.totalOps().total() ==
                    r1.engine.totalOps().total() &&
                r0.engine.heads.size() == r1.engine.heads.size();
            for (std::size_t h = 0;
                 replay_ok && h < r0.engine.heads.size(); ++h)
                replay_ok =
                    r0.engine.heads[h].result.output ==
                        r1.engine.heads[h].result.output &&
                    r0.engine.heads[h].result.selections ==
                        r1.engine.heads[h].result.selections;
        }

        // Fault tolerance must not bend determinism: recovered and
        // untouched requests alike match a standalone engine run.
        bool exact = true;
        std::int64_t attempts_total = 0;
        for (std::size_t i = 0; i < ftrace.size(); ++i) {
            const RequestResult &r = fres[0][i];
            attempts_total += r.attempts;
            if (r.outcome != Outcome::Completed)
                continue;
            const EngineResult ref = runEngine(
                generateModelWorkload(ftrace[i].work), fcfg.engine);
            bool req_ok = r.engine.heads.size() == ref.heads.size();
            for (std::size_t h = 0;
                 req_ok && h < ref.heads.size(); ++h) {
                const PipelineResult &x = r.engine.heads[h].result;
                const PipelineResult &y = ref.heads[h].result;
                req_ok = x.output == y.output &&
                         x.selections == y.selections &&
                         x.totalOps().total() ==
                             y.totalOps().total() &&
                         x.keysGenerated == y.keysGenerated;
            }
            exact = exact && req_ok;
        }

        std::printf("fault sweep (12 requests, plan \"%s\"):\n"
                    "  completed=%lld degraded=%lld shed=%lld "
                    "timedout=%lld failed=%lld retried=%lld "
                    "attempts=%lld\n  replay: %s; completed vs "
                    "standalone runs: %s\n",
                    fcfg.faults.describe().c_str(),
                    static_cast<long long>(a.completed),
                    static_cast<long long>(a.degraded),
                    static_cast<long long>(a.shed),
                    static_cast<long long>(a.timedOut),
                    static_cast<long long>(a.failed),
                    static_cast<long long>(a.retried),
                    static_cast<long long>(attempts_total),
                    replay_ok ? "bit-identical" : "DIVERGED",
                    exact ? "bit-exact" : "MISMATCH");
        rep.metric("fault_completed",
                   static_cast<double>(a.completed), "count")
            .tol(0.0);
        rep.metric("fault_degraded",
                   static_cast<double>(a.degraded), "count").tol(0.0);
        rep.metric("fault_shed", static_cast<double>(a.shed),
                   "count").tol(0.0);
        rep.metric("fault_timedout",
                   static_cast<double>(a.timedOut), "count").tol(0.0);
        rep.metric("fault_failed", static_cast<double>(a.failed),
                   "count").tol(0.0);
        rep.metric("fault_retried", static_cast<double>(a.retried),
                   "count").tol(0.0);
        // A pre-dispatch deadline expiry consumes 0 attempts where a
        // mid-run cancellation consumes 1; tolerance absorbs that
        // scheduling race (the outcome itself is unaffected).
        rep.metric("fault_attempts_total",
                   static_cast<double>(attempts_total), "count")
            .tol(1.0);
        rep.metric("fault_replay_identical", replay_ok ? 1.0 : 0.0,
                   "bool").tol(0.0);
        rep.metric("fault_completed_bitexact", exact ? 1.0 : 0.0,
                   "bool").tol(0.0);
        rep.metric("fault_wall_s", fwall, "s").nocheck();
        if (!replay_ok || !exact) {
            std::fprintf(stderr, "FAIL: fault sweep diverged across "
                                 "replays or vs standalone runs\n");
            return 1;
        }
    }

    // Graceful-degradation experiment: every request waits past the
    // (tiny) overload threshold, so all run on the degraded engine —
    // pipeline.topkFrac scaled by degradeKeepFactor — and resolve
    // Outcome::Degraded, bit-exact vs a standalone run of that
    // config. Quality is computed here (unlike the throughput sweep)
    // so the keep-span quality/cost trade is visible in the goldens.
    {
        SchedulerConfig dcfg;
        dcfg.engine = scfg.engine;
        dcfg.engine.computeQuality = true;
        dcfg.lanes = 2;
        dcfg.headBudget = 8;
        dcfg.startPaused = true;
        dcfg.faultsFromEnv = false;
        dcfg.degradeAfterSeconds = 1e-9; // degrade every request
        const std::vector<Request> dtrace = serve::mixedTrace(
            representativeScenarios(model), 8,
            ArrivalPattern::Burst, 0.0, seed + 3, 64, 1, 2);
        Scheduler sched(dcfg);
        std::vector<std::future<RequestResult>> futs;
        for (const Request &r : dtrace)
            futs.push_back(sched.submit(r));
        sched.drain();

        const EngineConfig degraded_cfg = degradedEngineConfig(dcfg);
        int degraded_n = 0;
        bool dexact = true;
        double keep_frac = 1.0;
        double deg_keys = 0.0, full_keys = 0.0;
        double deg_formal = 0.0, full_formal = 0.0;
        double deg_quality = 0.0, full_quality = 0.0;
        for (std::size_t i = 0; i < dtrace.size(); ++i) {
            const RequestResult r = futs[i].get();
            degraded_n += r.outcome == Outcome::Degraded ? 1 : 0;
            keep_frac = r.degradeKeepFrac;
            const ModelWorkload w =
                generateModelWorkload(dtrace[i].work);
            const EngineResult ref = runEngine(w, degraded_cfg);
            dexact = dexact &&
                     r.engine.totalOps().total() ==
                         ref.totalOps().total() &&
                     r.engine.keysGenerated == ref.keysGenerated &&
                     r.engine.heads.size() == ref.heads.size();
            for (std::size_t h = 0;
                 dexact && h < ref.heads.size(); ++h)
                dexact = r.engine.heads[h].result.output ==
                             ref.heads[h].result.output &&
                         r.engine.heads[h].result.selections ==
                             ref.heads[h].result.selections;
            const EngineResult full = runEngine(w, dcfg.engine);
            deg_keys += static_cast<double>(
                r.engine.keysGenerated + r.engine.keysCached);
            full_keys += static_cast<double>(full.keysGenerated +
                                             full.keysCached);
            deg_formal += r.engine.formalOps.normalized();
            full_formal += full.formalOps.normalized();
            deg_quality += r.engine.meanMassRecall;
            full_quality += full.meanMassRecall;
        }
        const double n_d = static_cast<double>(dtrace.size());
        std::printf("graceful degradation (8 requests, keep factor "
                    "%.2f): keep frac %.2f, formal ops %.1f%% of "
                    "full, mass recall %.4f vs %.4f full (%s)\n",
                    dcfg.degradeKeepFactor, keep_frac,
                    100.0 * deg_formal / full_formal,
                    deg_quality / n_d, full_quality / n_d,
                    dexact ? "bit-exact vs standalone degraded runs"
                           : "MISMATCH");
        rep.metric("degrade_count",
                   static_cast<double>(degraded_n), "count").tol(0.0);
        rep.metric("degrade_keep_frac", keep_frac, "fraction")
            .tol(0.0);
        rep.metric("degrade_bitexact", dexact ? 1.0 : 0.0, "bool")
            .tol(0.0);
        rep.metric("degrade_keys_ratio", deg_keys / full_keys,
                   "ratio").tol(0.05);
        rep.metric("degrade_formal_ratio", deg_formal / full_formal,
                   "ratio").tol(0.05);
        rep.metric("degrade_quality", deg_quality / n_d, "fraction")
            .tol(0.02);
        rep.metric("degrade_quality_full", full_quality / n_d,
                   "fraction").tol(0.02);
        if (!dexact) {
            std::fprintf(stderr, "FAIL: degraded results diverged "
                                 "from the degraded engine config\n");
            return 1;
        }
    }

    return 0;
}

} // namespace

SOFA_BENCH_MAIN("serve", run)
