/**
 * @file
 * Fig. 16 — (a) attention latency breakdown on the GPU (matmul is
 * only ~27% of attention time; >50% goes to memory access around
 * transpose/softmax/reshape) and the overall QKV/Attention/FFN
 * latency breakdown with the attention memory-access and energy
 * shares, for batch 1 and 4; (b) the pre-deployment / user-inference
 * flow.
 */

#include <cstdio>

#include "benchmain.h"
#include "model/config.h"
#include "model/flops.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::printf("=== Fig. 16(a): attention latency breakdown "
                "(GPU model, Llama-7B) ===\n");
    // The GPU model's dense mode splits time between matmul flops
    // and memory passes; the paper's profile: QxK 17.5%, SxV ~17%,
    // transpose+softmax 55.7% (memory), split/concat 16.2%.
    // We reproduce the structural claim from the roofline terms.
    auto m = models::llama7b();
    auto p = layerProfile(m, 4096, 512);
    const double matmul_flops = 4.0 * 512 * 4096 * m.hidden;
    const double total_flops = p.atten.flops;
    const double elementwise = total_flops - matmul_flops;
    // Memory passes of the score matrix dominate time on hardware
    // whose matmul units are far faster than its memory system.
    const double score_bytes = 3.0 * m.heads * 512.0 * 4096 * 2.0;
    const double io_bytes = p.atten.bytes - score_bytes;
    std::printf("matmul FLOPs share of attention ops : %5.1f%% "
                "(paper: matmul only ~26.8%% of latency)\n",
                100.0 * matmul_flops / total_flops);
    std::printf("softmax/element-wise ops share      : %5.1f%%\n",
                100.0 * elementwise / total_flops);
    std::printf("score-matrix share of memory traffic: %5.1f%% "
                "(paper: >50%% of latency in memory access)\n",
                100.0 * score_bytes / p.atten.bytes);
    std::printf("QKV/output share of memory traffic  : %5.1f%%\n",
                100.0 * io_bytes / p.atten.bytes);

    rep.metric("matmul_flops_share", matmul_flops / total_flops,
               "fraction").paper(0.268);
    rep.metric("score_mem_share", score_bytes / p.atten.bytes,
               "fraction").paper(0.5);

    std::printf("\n=== Fig. 16(b): overall latency breakdown ===\n");
    std::printf("%-22s %5s | %6s %6s %6s | %9s\n", "Model", "B",
                "QKV%", "Att%", "FFN%", "Att-mem%");
    struct Cfg { const char *label; ModelConfig model; int seq; };
    for (const auto &[label, model, seq] :
         {Cfg{"BERT-Large (512)", models::bertLarge(), 512},
          Cfg{"Bloom-1.7B (1k)", models::bloom1b7(), 1024},
          Cfg{"Bloom-1.7B (2k)", models::bloom1b7(), 2048},
          Cfg{"Llama-7B (4k)", models::llama7b(), 4096},
          Cfg{"Llama-13B (8k)", models::llama13b(), 8192}}) {
        for (int batch : {1, 4}) {
            auto lp = layerProfile(model, seq,
                                   static_cast<std::int64_t>(seq) *
                                       batch);
            const double tot = lp.total().flops;
            std::printf("%-22s %5d | %5.1f%% %5.1f%% %5.1f%% | "
                        "%8.1f%%\n",
                        label, batch, 100.0 * lp.qkv.flops / tot,
                        100.0 * lp.atten.flops / tot,
                        100.0 * lp.ffn.flops / tot,
                        100.0 * lp.atten.bytes /
                            lp.total().bytes);
            if (seq == 4096 && batch == 1) {
                rep.metric("llama7b_att_flops_share",
                           lp.atten.flops / tot, "fraction");
                rep.metric("llama7b_att_mem_share",
                           lp.atten.bytes / lp.total().bytes,
                           "fraction");
            }
        }
    }

    std::printf("\n=== Fig. 16 flow ===\n"
                "Pre-deployment (offline): choose model/dataset, "
                "DSE for per-layer tiling (core/dse), top-k "
                "fine-tune, convert Wk to LZ format (core/dlzs).\n"
                "User inference (online): load model, run SOFA "
                "dynamic-sparsity inference (core/pipeline).\n");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig16_profile", run)
