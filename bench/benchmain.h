/**
 * @file
 * Common main() for the bench_* binaries. A binary defines one run
 * function and declares itself with the macro:
 *
 *   static int run(const bench::Options &opts, bench::Reporter &r)
 *   {
 *       // print the human table, fill r with metrics
 *       return 0;
 *   }
 *   SOFA_BENCH_MAIN("fig05_fa2", run)
 *
 * which standardizes the CLI (--quick, --json-out PATH, --no-json,
 * --seed N) and writes BENCH_<name>.json through bench::Reporter so
 * scripts/golden_diff.py can gate the run against bench/goldens/.
 */

#ifndef SOFA_BENCH_BENCHMAIN_H
#define SOFA_BENCH_BENCHMAIN_H

#include "common/reporter.h"

#define SOFA_BENCH_MAIN(name, fn)                                    \
    int main(int argc, char **argv)                                  \
    {                                                                \
        return sofa::bench::benchMain(name, fn, argc, argv);         \
    }

#endif // SOFA_BENCH_BENCHMAIN_H
