/**
 * @file
 * Fig. 1 — Transformer memory and computation breakdown for long
 * sequences: QKV / Attention / FFN shares of memory footprint and
 * computation for Llama-7B and ViT-B as the sequence grows to 128k.
 */

#include <cstdio>

#include "model/config.h"
#include "model/flops.h"

using namespace sofa;

namespace {

void
report(const ModelConfig &m, const std::vector<std::int64_t> &seqs)
{
    std::printf("\n%s — memory footprint (MB) and computation share\n",
                m.name.c_str());
    std::printf("%8s | %8s %8s %8s | %7s %7s %7s\n", "S", "QKV(MB)",
                "Att(MB)", "FFN(MB)", "QKV%", "Att%", "FFN%");
    for (auto s : seqs) {
        auto p = modelProfile(m, s, s);
        const double mb = 1.0 / (1024.0 * 1024.0);
        const double tot = p.total().flops;
        std::printf(
            "%8lld | %8.0f %8.0f %8.0f | %6.1f%% %6.1f%% %6.1f%%\n",
            static_cast<long long>(s), p.qkv.bytes * mb,
            p.atten.bytes * mb, p.ffn.bytes * mb,
            100.0 * p.qkv.flops / tot, 100.0 * p.atten.flops / tot,
            100.0 * p.ffn.flops / tot);
    }
}

} // namespace

int
main()
{
    std::printf("=== Fig. 1: memory & computation breakdown ===\n");
    report(models::llama7b(), {4096, 16384, 32768, 65536, 131072});
    report(models::vitBase(), {4096, 8192, 14336, 32768, 129024});
    std::printf("\nPaper shape: attention share of both memory and\n"
                "computation overtakes FFN beyond ~32k tokens.\n");
    return 0;
}
