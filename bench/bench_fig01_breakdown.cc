/**
 * @file
 * Fig. 1 — Transformer memory and computation breakdown for long
 * sequences: QKV / Attention / FFN shares of memory footprint and
 * computation for Llama-7B and ViT-B as the sequence grows to 128k.
 */

#include <cstdio>

#include "benchmain.h"
#include "model/config.h"
#include "model/flops.h"

using namespace sofa;

namespace {

/** Returns the attention flops share at the longest sequence. */
double
report(const ModelConfig &m, const std::vector<std::int64_t> &seqs)
{
    std::printf("\n%s — memory footprint (MB) and computation share\n",
                m.name.c_str());
    std::printf("%8s | %8s %8s %8s | %7s %7s %7s\n", "S", "QKV(MB)",
                "Att(MB)", "FFN(MB)", "QKV%", "Att%", "FFN%");
    double att_share = 0.0;
    for (auto s : seqs) {
        auto p = modelProfile(m, s, s);
        const double mb = 1.0 / (1024.0 * 1024.0);
        const double tot = p.total().flops;
        att_share = p.atten.flops / tot;
        std::printf(
            "%8lld | %8.0f %8.0f %8.0f | %6.1f%% %6.1f%% %6.1f%%\n",
            static_cast<long long>(s), p.qkv.bytes * mb,
            p.atten.bytes * mb, p.ffn.bytes * mb,
            100.0 * p.qkv.flops / tot, 100.0 * p.atten.flops / tot,
            100.0 * p.ffn.flops / tot);
    }
    return att_share;
}

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::printf("=== Fig. 1: memory & computation breakdown ===\n");
    const double llama_share =
        report(models::llama7b(), {4096, 16384, 32768, 65536, 131072});
    const double vit_share =
        report(models::vitBase(), {4096, 8192, 14336, 32768, 129024});
    std::printf("\nPaper shape: attention share of both memory and\n"
                "computation overtakes FFN beyond ~32k tokens.\n");

    // The Fig. 1 claim in one number per model: attention dominates
    // computation at the longest evaluated sequence.
    rep.metric("llama7b_att_flops_share_s131072", llama_share,
               "fraction");
    rep.metric("vitb_att_flops_share_s129024", vit_share,
               "fraction");
    {
        auto p = modelProfile(models::llama7b(), 131072, 131072);
        rep.metric("llama7b_att_mem_share_s131072",
                   p.atten.bytes / p.total().bytes, "fraction");
        auto p32 = modelProfile(models::llama7b(), 32768, 32768);
        rep.metric("llama7b_att_flops_share_s32768",
                   p32.atten.flops / p32.total().flops, "fraction");
    }
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig01_breakdown", run)
