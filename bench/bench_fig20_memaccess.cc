/**
 * @file
 * Fig. 20 — (a) memory-access reduction of SOFA: vanilla LP = 100%,
 * +RASS ~77%, +SU-FA & tiled pipeline dataflow ~21% (the paper's 23%
 * and 79% cuts); (b) energy-efficiency gain over the A100 at
 * 0/1/2% loss (paper: 49.8x / 57.6x / 71.5x).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "benchmain.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "model/suite.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== Fig. 20(a): relative DRAM traffic ===\n");
    std::printf("%-24s | %8s %8s %8s\n", "Benchmark", "LP",
                "+RASS", "full");
    std::vector<double> rass_rel, full_rel;
    for (const auto &b : suiteSmall()) {
        AttentionShape shape;
        shape.queries = 256;
        shape.seq = b.seq;
        shape.headDim = b.model.headDim();
        shape.heads = 4;

        SofaConfig lp_cfg; // vanilla LP: no RASS, no tiling
        lp_cfg.features.rassScheduling = false;
        lp_cfg.features.tiledPipeline = false;
        lp_cfg.features.sufaOrdering = false;
        SofaConfig rass_cfg = lp_cfg;
        rass_cfg.features.rassScheduling = true;
        SofaConfig full_cfg; // everything on

        const double lp_bytes =
            SofaAccelerator(lp_cfg).run(shape).dramBytes;
        const double rass_bytes =
            SofaAccelerator(rass_cfg).run(shape).dramBytes;
        const double full_bytes =
            SofaAccelerator(full_cfg).run(shape).dramBytes;
        std::printf("%-24s | %7.1f%% %7.1f%% %7.1f%%\n",
                    b.name.c_str(), 100.0,
                    100.0 * rass_bytes / lp_bytes,
                    100.0 * full_bytes / lp_bytes);
        rass_rel.push_back(rass_bytes / lp_bytes);
        full_rel.push_back(full_bytes / lp_bytes);
    }
    std::printf("%-24s | %7.1f%% %7.1f%% %7.1f%%  "
                "(paper: 100/77/21)\n",
                "GeoMean", 100.0, 100.0 * geomean(rass_rel),
                100.0 * geomean(full_rel));
    rep.metric("rass_rel_traffic", geomean(rass_rel), "fraction")
        .paper(0.77).tol(0.01);
    rep.metric("full_rel_traffic", geomean(full_rel), "fraction")
        .paper(0.21).tol(0.01);

    std::printf("\n=== Fig. 20(b): energy-efficiency gain over A100 "
                "===\n");
    GpuModel gpu;
    // Quick tier: 6-benchmark subset (golden-gated CI); full run:
    // the paper's 20-benchmark suite.
    const auto suite = opts.quick ? suiteSmall() : suite20();
    std::vector<double> eff[3];
    const double losses[3] = {0.25, 1.0, 2.0};
    for (const auto &b : suite) {
        AttentionShape shape;
        shape.queries = 512;
        shape.seq = b.seq;
        shape.headDim = b.model.headDim();
        shape.heads = b.model.heads;
        const double gpu_eff =
            gpu.run(shape, GpuMode::Dense).gopsPerWatt;
        auto w = generateWorkload(b.workloadSpec(384, 16));
        PipelineConfig pcfg;
        for (int i = 0; i < 3; ++i) {
            SofaConfig cfg;
            cfg.topkFrac = std::max(
                0.03, minimalKeepFraction(w, pcfg, losses[i]));
            SofaAccelerator acc(cfg);
            eff[i].push_back(acc.run(shape).gopsPerWatt / gpu_eff);
        }
    }
    std::printf("GeoMean efficiency gain: %.1fx / %.1fx / %.1fx at "
                "0/1/2%% loss (paper: 49.8/57.6/71.5)\n",
                geomean(eff[0]), geomean(eff[1]), geomean(eff[2]));
    rep.metric("eff_gain_loss0", geomean(eff[0]), "ratio")
        .paper(49.8).tol(0.05);
    rep.metric("eff_gain_loss1", geomean(eff[1]), "ratio")
        .paper(57.6).tol(0.05);
    rep.metric("eff_gain_loss2", geomean(eff[2]), "ratio")
        .paper(71.5).tol(0.05);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig20_memaccess", run)
