/**
 * @file
 * Wall-clock micro-benchmarks of the simulator's core kernels: DLZS
 * prediction, SADS sorting, SU-FA vs FA-2 execution, and RASS
 * scheduling. These preserve the coverage of the pre-rewrite
 * bench_kernels (which now benchmarks the tensor kernel layer) as a
 * self-contained chrono harness with no Google Benchmark dependency.
 * Every metric is a machine-dependent latency, recorded for the
 * cross-PR trajectory but never golden-gated (nocheck).
 */

#include <cstdio>
#include <functional>

#include "benchmain.h"
#include "benchutil.h"

#include "arch/rass.h"
#include "attention/flash.h"
#include "core/dlzs.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "sparsity/topk.h"

namespace {

using namespace sofa;

/** Print and record best-of-reps latency for one case. */
void
report(bench::Reporter &rep, const char *name,
       const std::function<void()> &fn, double min_total = 0.4)
{
    const double best = benchutil::timeBest(fn, min_total, 10);
    std::printf("%-28s %10.3f ms\n", name, best * 1e3);
    std::string metric(name);
    for (auto &c : metric)
        if (c == '/' || c == '=')
            c = '_';
    rep.metric(metric + "_ms", best * 1e3, "ms").nocheck();
}

AttentionWorkload &
sharedWorkload(const bench::Options &opts)
{
    static AttentionWorkload w = [&opts] {
        WorkloadSpec spec;
        spec.seq = 1024;
        spec.queries = 32;
        spec.headDim = 64;
        spec.tokenDim = 64;
        spec.seed = opts.seedOr(spec.seed);
        return generateWorkload(spec);
    }();
    return w;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    auto &w = sharedWorkload(opts);
    // Quick tier: one timing sample per case; the artifact is for
    // trajectory only, never gated, so noise is acceptable there.
    const double min_total = opts.quick ? 0.0 : 0.4;
    std::printf("simulator kernel latency (seq=1024, queries=32, "
                "d=64; best of several reps)\n\n");

    report(rep, "dlzs_predict", [&] {
        auto pred = dlzsPredict(w.tokens, w.wk, w.q);
        (void)pred;
    }, min_total);

    for (const int segments : {1, 4, 16}) {
        char name[64];
        std::snprintf(name, sizeof(name), "sads_topk/segments=%d",
                      segments);
        SadsConfig cfg;
        cfg.segments = segments;
        report(rep, name, [&] {
            auto res = sadsTopK(w.scores, 204, cfg);
            (void)res;
        }, min_total);
    }

    report(rep, "vanilla_topk", [&] {
        OpCounter ops;
        auto sel = vanillaTopKRows(w.scores, 204, &ops);
        (void)sel;
    }, min_total);

    {
        auto sel = exactTopKRows(w.scores, 204);
        report(rep, "sufa_descending", [&] {
            auto res = sufaAttention(w.q, w.k, w.v, sel, {});
            (void)res;
        }, min_total);
        report(rep, "sparse_fa2/Bc=16", [&] {
            auto res = sparseFlash2(w.q, w.k, w.v, sel, 16);
            (void)res;
        }, min_total);
    }

    for (const int bc : {4, 16, 64}) {
        char name[64];
        std::snprintf(name, sizeof(name), "flash2_dense/Bc=%d", bc);
        report(rep, name, [&] {
            auto res = flashAttention2(w.q, w.k, w.v, {bc});
            (void)res;
        }, min_total);
    }

    {
        auto sel = sadsTopK(w.scores, 128, {}).selections();
        for (const int lanes : {16, 64}) {
            char name[64];
            std::snprintf(name, sizeof(name), "rass_schedule/pe=%d",
                          lanes);
            report(rep, name, [&] {
                auto res = scheduleRass(sel, lanes);
                (void)res;
            }, min_total);
        }
    }
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("sim", run)
