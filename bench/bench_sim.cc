/**
 * @file
 * Wall-clock micro-benchmarks of the simulator's core kernels: DLZS
 * prediction, SADS sorting, SU-FA vs FA-2 execution, and RASS
 * scheduling. These preserve the coverage of the pre-rewrite
 * bench_kernels (which now benchmarks the tensor kernel layer) as a
 * self-contained chrono harness with no Google Benchmark dependency.
 */

#include <cstdio>
#include <functional>

#include "benchutil.h"

#include "arch/rass.h"
#include "attention/flash.h"
#include "core/dlzs.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "sparsity/topk.h"

namespace {

using namespace sofa;

/** Print best-of-reps latency for one case. */
void
report(const char *name, const std::function<void()> &fn)
{
    const double best = benchutil::timeBest(fn, 0.4, 10);
    std::printf("%-28s %10.3f ms\n", name, best * 1e3);
}

AttentionWorkload &
sharedWorkload()
{
    static AttentionWorkload w = [] {
        WorkloadSpec spec;
        spec.seq = 1024;
        spec.queries = 32;
        spec.headDim = 64;
        spec.tokenDim = 64;
        return generateWorkload(spec);
    }();
    return w;
}

} // namespace

int
main()
{
    auto &w = sharedWorkload();
    std::printf("simulator kernel latency (seq=1024, queries=32, "
                "d=64; best of several reps)\n\n");

    report("dlzs_predict", [&] {
        auto pred = dlzsPredict(w.tokens, w.wk, w.q);
        (void)pred;
    });

    for (const int segments : {1, 4, 16}) {
        char name[64];
        std::snprintf(name, sizeof(name), "sads_topk/segments=%d",
                      segments);
        SadsConfig cfg;
        cfg.segments = segments;
        report(name, [&] {
            auto res = sadsTopK(w.scores, 204, cfg);
            (void)res;
        });
    }

    report("vanilla_topk", [&] {
        OpCounter ops;
        auto sel = vanillaTopKRows(w.scores, 204, &ops);
        (void)sel;
    });

    {
        auto sel = exactTopKRows(w.scores, 204);
        report("sufa_descending", [&] {
            auto res = sufaAttention(w.q, w.k, w.v, sel, {});
            (void)res;
        });
        report("sparse_fa2/Bc=16", [&] {
            auto res = sparseFlash2(w.q, w.k, w.v, sel, 16);
            (void)res;
        });
    }

    for (const int bc : {4, 16, 64}) {
        char name[64];
        std::snprintf(name, sizeof(name), "flash2_dense/Bc=%d", bc);
        report(name, [&] {
            auto res = flashAttention2(w.q, w.k, w.v, {bc});
            (void)res;
        });
    }

    {
        auto sel = sadsTopK(w.scores, 128, {}).selections();
        for (const int lanes : {16, 64}) {
            char name[64];
            std::snprintf(name, sizeof(name), "rass_schedule/pe=%d",
                          lanes);
            report(name, [&] {
                auto res = scheduleRass(sel, lanes);
                (void)res;
            });
        }
    }
    return 0;
}
