/**
 * @file
 * Engine-level benchmark: the stage-structured batched multi-head
 * execution engine (core/engine) over the paper's LTPP serving
 * regimes — prefill, disaggregated prefill, speculative decode and
 * plain KV-cache decode (Section I). Reports per-scenario op
 * throughput (Gop/s), decode-vs-prefill formal-op ratios, KV
 * generation/cache fractions and recall, verifies the engine is
 * bit-exact against a per-head runSofaPipeline loop, and measures
 * the SU-FA dotBlock kernel port against the scalar baseline plus
 * the serial-vs-pool thread scaling. Timings are machine-dependent
 * (nocheck, trajectory only); op ratios, fractions and the
 * bit-exactness bit are golden-gated.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/engine.h"
#include "model/config.h"
#include "model/scenarios.h"
#include "tensor/simd.h"

namespace {

using namespace sofa;
using benchutil::timeBest;

struct ScenarioRun
{
    std::string name;
    ModelWorkloadSpec spec;
    EngineResult result;
    double seconds = 0.0;
    double totalOpsN = 0.0; ///< normalized complexity of the run
};

/** Per-query-row normalized formal complexity (the decode currency). */
double
formalPerRow(const ScenarioRun &r)
{
    const double rows = static_cast<double>(r.spec.batch) *
                        r.spec.heads * r.spec.queryRows();
    return r.result.formalOps.normalized() / rows;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("engine benchmark: stage-structured batched "
                "multi-head pipeline (%d thread%s)\n\n", opts.threads,
                opts.threads == 1 ? "" : "s");

    // Scenario grid: one per serving regime, functional scale.
    const auto model = models::llama7b();
    const int ctx = opts.quick ? 256 : 512;
    const int max_batch = opts.quick ? 2 : 4;
    const int max_heads = opts.quick ? 2 : 4;
    std::vector<ScenarioRun> runs;
    for (const auto &s : representativeScenarios(model)) {
        ScenarioRun r;
        r.name = servingModeName(s.mode);
        r.spec = scenarioWorkloadSpec(s, ctx, max_batch, max_heads);
        r.spec.seed = opts.seedOr(0x50FAE000ull + runs.size());
        runs.push_back(std::move(r));
    }

    EngineConfig ecfg;
    ecfg.pipeline.topkFrac = 0.2;

    Table t;
    t.column("scenario", Align::Left)
        .column("B")
        .column("H")
        .column("T")
        .column("S")
        .column("cached")
        .column("Gop/s")
        .column("keys gen%")
        .column("mass recall")
        .column("formal/row");
    for (auto &r : runs) {
        const ModelWorkload mw = generateModelWorkload(r.spec);
        r.seconds = timeBest(
            [&] { r.result = runEngine(mw, ecfg); }, 0.25, 4);
        r.totalOpsN = r.result.totalOps().normalized();
        const double total_keys = static_cast<double>(r.spec.batch) *
                                  r.spec.heads * r.spec.contextLen();
        const double gen_frac = static_cast<double>(
                                    r.result.keysGenerated) /
                                total_keys;
        const double gops =
            static_cast<double>(r.result.totalOps().total()) /
            r.seconds / 1e9;
        t.row()
            .cell(r.name)
            .cell(static_cast<std::int64_t>(r.spec.batch))
            .cell(static_cast<std::int64_t>(r.spec.heads))
            .cell(static_cast<std::int64_t>(r.spec.queryRows()))
            .cell(static_cast<std::int64_t>(r.spec.contextLen()))
            .cell(static_cast<std::int64_t>(r.result.keysCached))
            .cell(gops, 2)
            .cell(100.0 * gen_frac, 1)
            .cell(r.result.meanMassRecall, 3)
            .cell(formalPerRow(r), 0);

        rep.metric(r.name + "_gops", gops, "gops").nocheck();
        rep.metric(r.name + "_seconds", r.seconds, "s").nocheck();
        rep.metric(r.name + "_keys_generated_frac", gen_frac,
                   "fraction").tol(0.05).atol(0.01);
        rep.metric(r.name + "_mass_recall",
                   r.result.meanMassRecall, "fraction").tol(0.02);
        rep.metric(r.name + "_formal_per_row", formalPerRow(r),
                   "normalized ops").tol(0.05);
    }
    std::printf("%s\n", t.render().c_str());

    // Decode-vs-prefill formal-op ratios: the KV cache plus tiny T
    // collapse the per-row formal cost of decode steps.
    const ScenarioRun *prefill = nullptr, *decode = nullptr,
                      *spec = nullptr;
    for (const auto &r : runs) {
        if (r.name == std::string("prefill"))
            prefill = &r;
        if (r.name == std::string("decode"))
            decode = &r;
        if (r.name == std::string("speculative"))
            spec = &r;
    }
    if (prefill && decode && spec) {
        const double decode_ratio =
            formalPerRow(*decode) / formalPerRow(*prefill);
        const double spec_ratio =
            formalPerRow(*spec) / formalPerRow(*prefill);
        std::printf("formal ops per query row vs prefill: "
                    "decode %.3fx, speculative %.3fx\n",
                    decode_ratio, spec_ratio);
        rep.metric("decode_vs_prefill_formal_ratio", decode_ratio,
                   "ratio").tol(0.05);
        rep.metric("speculative_vs_prefill_formal_ratio", spec_ratio,
                   "ratio").tol(0.05);
        const double cached_frac =
            static_cast<double>(decode->result.keysCached) /
            static_cast<double>(decode->result.keysCached +
                                decode->result.keysGenerated);
        rep.metric("decode_keys_cached_frac", cached_frac,
                   "fraction").tol(0.02);
    }

    // Bit-exactness vs a per-head runSofaPipeline loop (the
    // refactor's contract), on a small multi-head decode+prefill mix.
    {
        ModelWorkloadSpec ms;
        ms.batch = 2;
        ms.heads = 2;
        ms.seq = 128;
        ms.queries = 16;
        ms.mixture = model.mixture;
        ms.seed = opts.seedOr(0x50FAE100ull);
        const ModelWorkload mw = generateModelWorkload(ms);
        const EngineResult er = runEngine(mw, ecfg);
        bool match = true;
        for (const HeadResult &hr : er.heads) {
            const PipelineResult ref = runSofaPipeline(
                mw.head(hr.batch, hr.head), ecfg.pipeline);
            match = match && hr.result.output == ref.output &&
                    hr.result.selections == ref.selections &&
                    hr.result.totalOps().total() ==
                        ref.totalOps().total() &&
                    hr.result.keysGenerated == ref.keysGenerated;
        }
        std::printf("engine vs per-head pipeline loop: %s\n",
                    match ? "bit-exact" : "MISMATCH");
        rep.metric("engine_matches_perhead", match ? 1.0 : 0.0,
                   "bool").tol(0.0);
        if (!match) {
            std::fprintf(stderr, "FAIL: engine diverged from the "
                                 "per-head pipeline loop\n");
            return 1;
        }
    }

    // Thread scaling: the prefill scenario serial vs the pool.
    if (prefill) {
        const ModelWorkload mw = generateModelWorkload(prefill->spec);
        double serial_s;
        {
            ThreadPool::ScopedSerial serial;
            serial_s = timeBest([&] { (void)runEngine(mw, ecfg); },
                                0.25, 3);
        }
        const double speedup = serial_s / prefill->seconds;
        std::printf("prefill thread scaling: serial %.3fs vs pool "
                    "%.3fs (%.2fx, %d threads)\n", serial_s,
                    prefill->seconds, speedup, opts.threads);
        rep.metric("prefill_serial_seconds", serial_s, "s").nocheck();
        rep.metric("prefill_thread_speedup", speedup, "ratio")
            .nocheck();
    }

    // Whole-engine SIMD dispatch: the same prefill run with the
    // kernels forced scalar vs forced AVX2. Because every SIMD body
    // is bit-identical to its scalar baseline, the two runs must
    // agree on every output and op count (golden-gated bit); the
    // speedup is the end-to-end win of the explicit-SIMD layer.
    const auto sameEngineResults = [](const EngineResult &x,
                                      const EngineResult &y) {
        if (x.heads.size() != y.heads.size())
            return false;
        for (std::size_t i = 0; i < x.heads.size(); ++i) {
            const HeadResult &a = x.heads[i];
            const HeadResult &b = y.heads[i];
            if (!(a.result.output == b.result.output &&
                  a.result.selections == b.result.selections &&
                  a.result.totalOps().total() ==
                      b.result.totalOps().total() &&
                  a.result.keysGenerated == b.result.keysGenerated))
                return false;
        }
        return x.totalOps().total() == y.totalOps().total() &&
               x.keysGenerated == y.keysGenerated;
    };
    if (prefill) {
        const ModelWorkload mw = generateModelWorkload(prefill->spec);
        EngineResult scalar_res, simd_res;
        double scalar_s, simd_s;
        {
            simd::ScopedLevel lvl(simd::Level::Scalar);
            scalar_s = timeBest(
                [&] { scalar_res = runEngine(mw, ecfg); }, 0.25, 3);
        }
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            simd_s = timeBest(
                [&] { simd_res = runEngine(mw, ecfg); }, 0.25, 3);
        }
        const bool match = sameEngineResults(scalar_res, simd_res);
        const double speedup = scalar_s / simd_s;
        std::printf("engine simd dispatch (%s): scalar %.3fs vs "
                    "simd %.3fs (%.2fx), results %s\n",
                    simd::levelName(simd::detected()), scalar_s,
                    simd_s, speedup,
                    match ? "bit-exact" : "MISMATCH");
        rep.metric("engine_simd_speedup", speedup, "ratio").nocheck();
        rep.metric("engine_simd_match", match ? 1.0 : 0.0, "bool")
            .tol(0.0);
    }

    // Static vs dynamic sharding: identical work, two schedulers.
    // Results are bit-exact either way (canonical-order merges);
    // the speedup shows what heaviest-first dynamic chunk claiming
    // buys on the ragged mixed-scenario grid.
    if (prefill) {
        const ModelWorkload mw = generateModelWorkload(prefill->spec);
        EngineConfig stat_cfg = ecfg, dyn_cfg = ecfg;
        stat_cfg.dynamicSharding = false;
        dyn_cfg.dynamicSharding = true;
        EngineResult stat_res, dyn_res;
        const double stat_s = timeBest(
            [&] { stat_res = runEngine(mw, stat_cfg); }, 0.25, 3);
        const double dyn_s = timeBest(
            [&] { dyn_res = runEngine(mw, dyn_cfg); }, 0.25, 3);
        const bool match = sameEngineResults(stat_res, dyn_res);
        const double speedup = stat_s / dyn_s;
        std::printf("engine sharding: static %.3fs vs dynamic %.3fs "
                    "(%.2fx), results %s\n", stat_s, dyn_s, speedup,
                    match ? "bit-exact" : "MISMATCH");
        rep.metric("engine_dynamic_speedup", speedup, "ratio")
            .nocheck();
        rep.metric("engine_dynamic_match", match ? 1.0 : 0.0, "bool")
            .tol(0.0);
    }

    // SU-FA inner-product kernel port: dotBlock vs the scalar
    // baseline on one prefill head (the trajectory metric the
    // ROADMAP's perf thread tracks).
    if (prefill) {
        const ModelWorkload mw = generateModelWorkload(prefill->spec);
        const AttentionWorkload &w = mw.head(0, 0);
        const EngineResult er = runEngine(mw, ecfg);
        const SelectionList &sel = er.heads[0].result.selections;
        SufaConfig blocked, scalar;
        blocked.blockedDot = true;
        scalar.blockedDot = false;
        SufaResult rb, rs;
        const double blocked_s = timeBest(
            [&] { rb = sufaAttention(w.q, w.k, w.v, sel, blocked); },
            0.25, 6);
        const double scalar_s = timeBest(
            [&] { rs = sufaAttention(w.q, w.k, w.v, sel, scalar); },
            0.25, 6);
        const double speedup = scalar_s / blocked_s;
        std::printf("SU-FA inner products: scalar %.4fs vs dotBlock "
                    "%.4fs (%.2fx)\n", scalar_s, blocked_s, speedup);
        rep.metric("sufa_scalar_seconds", scalar_s, "s").nocheck();
        rep.metric("sufa_dotblock_seconds", blocked_s, "s").nocheck();
        rep.metric("sufa_dotblock_speedup", speedup, "ratio")
            .nocheck();
        // Op counts must be identical across the two paths — only
        // the float summation order differs.
        rep.metric("sufa_dotblock_ops_match",
                   rb.ops.total() == rs.ops.total() ? 1.0 : 0.0,
                   "bool").tol(0.0);
    }

    rep.metric("stages",
               static_cast<double>(
                   Engine(ecfg).stageNames().size()),
               "count").tol(0.0);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("engine", run)
