/**
 * @file
 * Fig. 4 — (b) normalized operational intensity of QKV / MHA / FFN
 * for ViT-B, BERT-B, GPT2-L, Bloom-3B; (c) MHA OI vs token
 * parallelism for Bloom-3B and GPT-2.
 */

#include <cstdio>

#include "benchmain.h"
#include "model/config.h"
#include "model/flops.h"

using namespace sofa;

namespace {

int
run(const bench::Options &, bench::Reporter &rep)
{
    std::printf("=== Fig. 4(b): normalized operational intensity ===\n");
    std::printf("%-10s | %8s %8s %8s (normalized to FFN)\n", "Model",
                "QKV", "MHA", "FFN");
    for (const auto &m : {models::vitBase(), models::bertBase(),
                          models::gpt2Large(), models::bloom3b()}) {
        auto p = layerProfile(m, std::min(m.maxSeq, 1024),
                              std::min(m.maxSeq, 1024));
        const double ffn = p.ffn.intensity();
        std::printf("%-10s | %7.1f%% %7.1f%% %7.1f%%\n",
                    m.name.c_str(),
                    100.0 * p.qkv.intensity() / ffn,
                    100.0 * p.atten.intensity() / ffn, 100.0);
        if (m.name == models::bloom3b().name) {
            rep.metric("bloom3b_mha_oi_norm",
                       p.atten.intensity() / ffn, "fraction")
                .paper(0.15);
        }
    }

    std::printf("\n=== Fig. 4(c): MHA OI vs token parallelism ===\n");
    std::printf("%10s | %10s %10s\n", "T", "Bloom-3B", "GPT-2");
    for (int t : {1, 2, 4, 8, 16, 32, 64, 128}) {
        std::printf("%10d | %10.1f %10.1f\n", t,
                    attentionIntensity(models::bloom3b(), 2048, t),
                    attentionIntensity(models::gpt2(), 1024, t));
    }
    std::printf("\nPaper shape: MHA OI ~15%% of FFN; OI rises with "
                "parallelism and saturates.\n");

    rep.metric("bloom3b_mha_oi_t1",
               attentionIntensity(models::bloom3b(), 2048, 1),
               "flops_per_byte");
    rep.metric("bloom3b_mha_oi_t128",
               attentionIntensity(models::bloom3b(), 2048, 128),
               "flops_per_byte");
    rep.metric("gpt2_mha_oi_t128",
               attentionIntensity(models::gpt2(), 1024, 128),
               "flops_per_byte");
    // The saturation claim: 128-way parallelism lifts OI by well
    // over an order of magnitude relative to T=1.
    rep.metric("bloom3b_oi_gain_t128",
               attentionIntensity(models::bloom3b(), 2048, 128) /
                   attentionIntensity(models::bloom3b(), 2048, 1),
               "ratio");
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig04_oi", run)
