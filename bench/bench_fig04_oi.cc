/**
 * @file
 * Fig. 4 — (b) normalized operational intensity of QKV / MHA / FFN
 * for ViT-B, BERT-B, GPT2-L, Bloom-3B; (c) MHA OI vs token
 * parallelism for Bloom-3B and GPT-2.
 */

#include <cstdio>

#include "model/config.h"
#include "model/flops.h"

using namespace sofa;

int
main()
{
    std::printf("=== Fig. 4(b): normalized operational intensity ===\n");
    std::printf("%-10s | %8s %8s %8s (normalized to FFN)\n", "Model",
                "QKV", "MHA", "FFN");
    for (const auto &m : {models::vitBase(), models::bertBase(),
                          models::gpt2Large(), models::bloom3b()}) {
        auto p = layerProfile(m, std::min(m.maxSeq, 1024),
                              std::min(m.maxSeq, 1024));
        const double ffn = p.ffn.intensity();
        std::printf("%-10s | %7.1f%% %7.1f%% %7.1f%%\n",
                    m.name.c_str(),
                    100.0 * p.qkv.intensity() / ffn,
                    100.0 * p.atten.intensity() / ffn, 100.0);
    }

    std::printf("\n=== Fig. 4(c): MHA OI vs token parallelism ===\n");
    std::printf("%10s | %10s %10s\n", "T", "Bloom-3B", "GPT-2");
    for (int t : {1, 2, 4, 8, 16, 32, 64, 128}) {
        std::printf("%10d | %10.1f %10.1f\n", t,
                    attentionIntensity(models::bloom3b(), 2048, t),
                    attentionIntensity(models::gpt2(), 1024, t));
    }
    std::printf("\nPaper shape: MHA OI ~15%% of FFN; OI rises with "
                "parallelism and saturates.\n");
    return 0;
}
