/**
 * @file
 * Ablation — layer-specific FFN sparsity (the 4th optimization of
 * Fig. 6(a)): keep-fraction sweep (output error vs W2 MACs saved)
 * and per-layer calibration on a stack with depth-increasing
 * activation skew.
 */

#include <algorithm>
#include <cstdio>

#include "benchmain.h"
#include "core/ffn.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    Rng rng(opts.seedOr(0xFF7));
    const int H = 64, F = 256, T = 32;

    MatF probe(T, H);
    for (auto &v : probe.data())
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    std::printf("=== FFN sparsity: keep sweep (H=%d, F=%d) ===\n", H,
                F);
    auto layer = makeFfnLayer(rng, H, F, 0.1, 4.0);
    auto dense = ffnForward(layer, probe);
    std::printf("%8s | %12s %12s %12s\n", "keep", "rel.error",
                "muls saved", "norm. cost");
    for (double keep : {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}) {
        auto sparse = ffnForwardSparse(layer, probe, keep);
        const double err =
            relativeError(sparse.output, dense.output);
        const double saved =
            1.0 - static_cast<double>(sparse.ops.muls()) /
                      static_cast<double>(dense.ops.muls());
        std::printf("%7.0f%% | %12.4f %11.1f%% %12.0f\n",
                    100.0 * keep, err, 100.0 * saved,
                    sparse.ops.normalized());
        if (keep == 0.2) {
            rep.metric("rel_error_keep20", err, "fraction")
                .tol(0.01);
            rep.metric("muls_saved_keep20", saved, "fraction")
                .tol(0.01);
        }
    }

    std::printf("\n=== layer-specific calibration "
                "(error budget 10%%) ===\n");
    std::vector<FfnLayer> stack;
    const double hot_fracs[] = {0.5, 0.3, 0.15, 0.08, 0.05, 0.03};
    for (double hf : hot_fracs)
        stack.push_back(makeFfnLayer(rng, H, F, hf, 5.0));
    auto keeps = calibrateStack(stack, probe, 0.10);
    std::printf("%8s | %10s %10s\n", "layer", "hot frac", "keep");
    for (std::size_t l = 0; l < stack.size(); ++l)
        std::printf("%8zu | %9.0f%% %9.0f%%\n", l,
                    100.0 * hot_fracs[l], 100.0 * keeps[l]);
    std::printf("\nShape: deeper (more skewed) layers tolerate "
                "smaller keeps — the layer-specific adaptation of "
                "Fig. 6(a).\n");

    // Calibration walks a discrete keep grid; allow one step.
    rep.metric("calibrated_keep_layer0", keeps.front(), "fraction")
        .tol(0.3);
    rep.metric("calibrated_keep_layer5", keeps.back(), "fraction")
        .tol(0.3);
    rep.metric("keep_monotone_nonincreasing",
               std::is_sorted(keeps.rbegin(), keeps.rend()) ? 1.0
                                                            : 0.0,
               "bool").tol(0.0);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("ablation_ffn", run)
