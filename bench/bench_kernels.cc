/**
 * @file
 * Google-benchmark micro-benchmarks of the core kernels: DLZS
 * prediction, SADS sorting, SU-FA vs FA-2 execution, and RASS
 * scheduling — wall-clock performance of the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "arch/rass.h"
#include "attention/flash.h"
#include "core/dlzs.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "sparsity/topk.h"

namespace {

using namespace sofa;

AttentionWorkload &
sharedWorkload()
{
    static AttentionWorkload w = [] {
        WorkloadSpec spec;
        spec.seq = 1024;
        spec.queries = 32;
        spec.headDim = 64;
        spec.tokenDim = 64;
        return generateWorkload(spec);
    }();
    return w;
}

void
BM_DlzsPredict(benchmark::State &state)
{
    auto &w = sharedWorkload();
    for (auto _ : state) {
        auto pred = dlzsPredict(w.tokens, w.wk, w.q);
        benchmark::DoNotOptimize(pred.scoresHat);
    }
}
BENCHMARK(BM_DlzsPredict)->Unit(benchmark::kMillisecond);

void
BM_SadsTopK(benchmark::State &state)
{
    auto &w = sharedWorkload();
    SadsConfig cfg;
    cfg.segments = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto res = sadsTopK(w.scores, 204, cfg);
        benchmark::DoNotOptimize(res.rows);
    }
}
BENCHMARK(BM_SadsTopK)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_VanillaTopK(benchmark::State &state)
{
    auto &w = sharedWorkload();
    for (auto _ : state) {
        OpCounter ops;
        auto sel = vanillaTopKRows(w.scores, 204, &ops);
        benchmark::DoNotOptimize(sel);
    }
}
BENCHMARK(BM_VanillaTopK)->Unit(benchmark::kMillisecond);

void
BM_SufaDescending(benchmark::State &state)
{
    auto &w = sharedWorkload();
    auto sel = exactTopKRows(w.scores, 204);
    for (auto _ : state) {
        auto res = sufaAttention(w.q, w.k, w.v, sel, {});
        benchmark::DoNotOptimize(res.output);
    }
}
BENCHMARK(BM_SufaDescending)->Unit(benchmark::kMillisecond);

void
BM_SparseFa2(benchmark::State &state)
{
    auto &w = sharedWorkload();
    auto sel = exactTopKRows(w.scores, 204);
    for (auto _ : state) {
        auto res = sparseFlash2(w.q, w.k, w.v, sel, 16);
        benchmark::DoNotOptimize(res.output);
    }
}
BENCHMARK(BM_SparseFa2)->Unit(benchmark::kMillisecond);

void
BM_Flash2Dense(benchmark::State &state)
{
    auto &w = sharedWorkload();
    for (auto _ : state) {
        auto res = flashAttention2(w.q, w.k, w.v,
                                   {static_cast<int>(state.range(0))});
        benchmark::DoNotOptimize(res.output);
    }
}
BENCHMARK(BM_Flash2Dense)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_RassSchedule(benchmark::State &state)
{
    auto &w = sharedWorkload();
    auto sel = sadsTopK(w.scores, 128, {}).selections();
    for (auto _ : state) {
        auto res = scheduleRass(
            sel, static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(res.vectorLoads);
    }
}
BENCHMARK(BM_RassSchedule)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
