/**
 * @file
 * Kernel-layer benchmark: naive seed kernels vs the register-tiled
 * cache-blocked kernels vs blocked + threaded, for matmulNT, matmul
 * and transpose. Reports GFLOP/s (GB/s for transpose) and speedups,
 * cross-checks blocked results against the naive reference, and
 * writes BENCH_kernels.json through the shared bench::Reporter so
 * later PRs can diff the performance trajectory. Timing metrics are
 * machine-dependent and therefore nocheck(); the correctness
 * cross-checks (rel_err, threaded == blocked) are golden-gated.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/simd.h"

namespace {

using namespace sofa;
using benchutil::timeBest;

MatF
randomMat(std::size_t rows, std::size_t cols, Rng &rng)
{
    MatF m(rows, cols);
    for (auto &x : m.data())
        x = static_cast<float>(rng.gaussian());
    return m;
}

struct Result
{
    std::string kernel;
    std::size_t m, n, k;
    double naive_s, blocked_s, threaded_s;
    double flops; ///< arithmetic per run (2mnk; bytes for transpose)
    double max_rel_err; ///< blocked vs naive
    bool threaded_matches_blocked;
    bool threaded = true; ///< false: kernel has no threaded variant
};

double
gflops(double flops, double seconds)
{
    return flops / seconds / 1e9;
}

Result
runMatmulNT(std::size_t m, std::size_t n, std::size_t k, Rng &rng)
{
    const MatF a = randomMat(m, k, rng);
    const MatF b = randomMat(n, k, rng);
    MatF c_naive, c_blocked, c_threaded;
    Result r;
    r.kernel = "matmulNT";
    r.m = m;
    r.n = n;
    r.k = k;
    r.flops = 2.0 * static_cast<double>(m) * n * k;
    r.naive_s = timeBest([&] { c_naive = matmulNTNaive(a, b); });
    r.blocked_s = timeBest([&] { c_blocked = matmulNTBlocked(a, b); });
    r.threaded_s = timeBest([&] { c_threaded = matmulNT(a, b); });
    r.max_rel_err = relativeError(c_blocked, c_naive);
    r.threaded_matches_blocked = (c_threaded == c_blocked);
    return r;
}

Result
runMatmul(std::size_t m, std::size_t k, std::size_t n, Rng &rng)
{
    const MatF a = randomMat(m, k, rng);
    const MatF b = randomMat(k, n, rng);
    MatF c_naive, c_blocked, c_threaded;
    Result r;
    r.kernel = "matmul";
    r.m = m;
    r.n = n;
    r.k = k;
    r.flops = 2.0 * static_cast<double>(m) * n * k;
    r.naive_s = timeBest([&] { c_naive = matmulNaive(a, b); });
    r.blocked_s = timeBest([&] { c_blocked = matmulBlocked(a, b); });
    r.threaded_s = timeBest([&] { c_threaded = matmul(a, b); });
    r.max_rel_err = relativeError(c_blocked, c_naive);
    r.threaded_matches_blocked = (c_threaded == c_blocked);
    return r;
}

Result
runTranspose(std::size_t m, std::size_t n, Rng &rng)
{
    const MatF a = randomMat(m, n, rng);
    MatF t_naive, t_blocked;
    Result r;
    r.kernel = "transpose";
    r.m = m;
    r.n = n;
    r.k = 0;
    // Memory-bound: report bytes moved (read + write) instead of
    // flops; the table column becomes GB/s.
    r.flops = 2.0 * static_cast<double>(m) * n * sizeof(float);
    r.naive_s = timeBest([&] { t_naive = transposeNaive(a); });
    r.blocked_s = timeBest([&] { t_blocked = transposeBlocked(a); });
    r.threaded_s = 0.0; // unused: no threaded transpose variant
    r.max_rel_err = (t_blocked == t_naive) ? 0.0 : 1.0;
    r.threaded_matches_blocked = true;
    r.threaded = false; // transpose has no threaded variant
    return r;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    const int threads = ThreadPool::instance().threads();
    std::printf("kernel benchmark: naive seed vs blocked vs "
                "blocked+threaded (%d thread%s)\n\n",
                threads, threads == 1 ? "" : "s");

    Rng rng(opts.seedOr(0xBE7C4));
    std::vector<Result> results;
    std::vector<std::size_t> sizes = {256, 512};
    if (!opts.quick)
        sizes.push_back(1024);
    for (const std::size_t s : sizes)
        results.push_back(runMatmulNT(s, s, s, rng));
    for (const std::size_t s : sizes)
        results.push_back(runMatmul(s, s, s, rng));
    // Attention-shaped case: many keys, small head dim (Q x K^T).
    results.push_back(runMatmulNT(64, 4096, 64, rng));
    results.push_back(runTranspose(2048, 2048, rng));

    Table t;
    t.column("kernel", Align::Left)
        .column("m")
        .column("n")
        .column("k")
        .column("naive GF/s")
        .column("blocked GF/s")
        .column("threaded GF/s")
        .column("x blocked")
        .column("x threaded")
        .column("rel.err")
        .column("ok", Align::Left);
    bool all_ok = true;
    for (const auto &r : results) {
        const bool ok =
            r.max_rel_err < 1e-5 && r.threaded_matches_blocked;
        all_ok = all_ok && ok;
        t.row()
            .cell(r.kernel)
            .cell(static_cast<std::int64_t>(r.m))
            .cell(static_cast<std::int64_t>(r.n))
            .cell(static_cast<std::int64_t>(r.k))
            .cell(gflops(r.flops, r.naive_s))
            .cell(gflops(r.flops, r.blocked_s));
        if (r.threaded) {
            t.cell(gflops(r.flops, r.threaded_s))
                .cell(r.naive_s / r.blocked_s)
                .cell(r.naive_s / r.threaded_s);
        } else {
            // No threaded variant: never print a fabricated number.
            t.cell("-")
                .cell(r.naive_s / r.blocked_s)
                .cell("-");
        }
        t.cell(r.max_rel_err, 8).cell(ok ? "yes" : "NO");

        // Case tag, e.g. "matmulNT_512x512x512".
        char tag[96];
        std::snprintf(tag, sizeof(tag), "%s_%zux%zux%zu",
                      r.kernel.c_str(), r.m, r.n, r.k);
        const std::string prefix(tag);
        const char *rate = r.kernel == "transpose" ? "gbps"
                                                   : "gflops";
        rep.metric(prefix + "_naive", gflops(r.flops, r.naive_s),
                   rate).nocheck();
        rep.metric(prefix + "_blocked",
                   gflops(r.flops, r.blocked_s), rate).nocheck();
        rep.metric(prefix + "_speedup_blocked",
                   r.naive_s / r.blocked_s, "ratio").nocheck();
        if (r.threaded) {
            rep.metric(prefix + "_threaded",
                       gflops(r.flops, r.threaded_s), rate)
                .nocheck();
            rep.metric(prefix + "_speedup_threaded",
                       r.naive_s / r.threaded_s, "ratio").nocheck();
            rep.metric(prefix + "_threaded_matches_blocked",
                       r.threaded_matches_blocked ? 1.0 : 0.0,
                       "bool").tol(0.0);
        }
        // Numerical agreement with the seed kernels IS golden-gated
        // (it only moves when the kernel math changes).
        rep.metric(prefix + "_rel_err", r.max_rel_err, "fraction")
            .tol(0.0).atol(1e-5);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("(transpose row reports GB/s, not GFLOP/s; 'x' "
                "columns are speedup over the naive seed kernel)\n");

    // Explicit-SIMD dispatch layer (tensor/simd): the AVX2 bodies of
    // dotBlock / minmaxBlock / scanSurvivors against their scalar
    // baselines. The dispatched results are bit-identical to scalar
    // by construction, so the match bits are golden-gated at zero
    // tolerance; the speedups are machine-dependent trajectory
    // metrics (scalar-only hosts report 1.0x).
    {
        const std::size_t n = opts.quick ? (1u << 14) : (1u << 16);
        const MatF va = randomMat(1, n, rng);
        const MatF vb = randomMat(1, n, rng);
        const float *a = va.rowPtr(0);
        const float *b = vb.rowPtr(0);

        double dot_scalar = 0.0, dot_simd = 0.0;
        float mn_sc, mx_sc, mn_sd, mx_sd;
        std::vector<std::int32_t> idx_sc(n), idx_sd(n);
        std::size_t kept_sc = 0, kept_sd = 0;
        float mid;
        minmaxBlockScalar(a, n, &mn_sc, &mx_sc);
        mid = 0.5f * (mn_sc + mx_sc);

        double dot_scalar_s, dot_simd_s, mm_scalar_s, mm_simd_s,
            scan_scalar_s, scan_simd_s;
        {
            simd::ScopedLevel lvl(simd::Level::Scalar);
            dot_scalar_s = timeBest(
                [&] { dot_scalar = dotBlock(a, b, n); }, 0.2, 8);
            mm_scalar_s = timeBest(
                [&] { minmaxBlock(a, n, &mn_sc, &mx_sc); }, 0.2, 8);
            scan_scalar_s = timeBest(
                [&] {
                    kept_sc = simd::scanSurvivors(a, n, mid,
                                                  idx_sc.data());
                },
                0.2, 8);
        }
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            dot_simd_s = timeBest(
                [&] { dot_simd = dotBlock(a, b, n); }, 0.2, 8);
            mm_simd_s = timeBest(
                [&] { minmaxBlock(a, n, &mn_sd, &mx_sd); }, 0.2, 8);
            scan_simd_s = timeBest(
                [&] {
                    kept_sd = simd::scanSurvivors(a, n, mid,
                                                  idx_sd.data());
                },
                0.2, 8);
        }
        const bool dot_exact = dot_scalar == dot_simd;
        const bool mm_exact = mn_sc == mn_sd && mx_sc == mx_sd;
        const bool scan_exact = kept_sc == kept_sd && idx_sc == idx_sd;
        all_ok = all_ok && dot_exact && mm_exact && scan_exact;

        std::printf("simd dispatch (%s, n=%zu): dotBlock %.2fx, "
                    "minmaxBlock %.2fx, scanSurvivors %.2fx vs "
                    "scalar; bit-exact %s/%s/%s\n",
                    simd::levelName(simd::detected()), n,
                    dot_scalar_s / dot_simd_s, mm_scalar_s / mm_simd_s,
                    scan_scalar_s / scan_simd_s,
                    dot_exact ? "yes" : "NO", mm_exact ? "yes" : "NO",
                    scan_exact ? "yes" : "NO");

        rep.metric("simd_avx2_detected",
                   simd::detected() == simd::Level::Avx2 ? 1.0 : 0.0,
                   "bool").nocheck();
        rep.metric("dotblock_simd_speedup", dot_scalar_s / dot_simd_s,
                   "ratio").nocheck();
        rep.metric("minmax_simd_speedup", mm_scalar_s / mm_simd_s,
                   "ratio").nocheck();
        rep.metric("scan_simd_speedup", scan_scalar_s / scan_simd_s,
                   "ratio").nocheck();
        rep.metric("dotblock_simd_bitexact", dot_exact ? 1.0 : 0.0,
                   "bool").tol(0.0);
        rep.metric("minmax_simd_bitexact", mm_exact ? 1.0 : 0.0,
                   "bool").tol(0.0);
        rep.metric("scan_simd_match", scan_exact ? 1.0 : 0.0, "bool")
            .tol(0.0);
    }

    rep.metric("threads", threads, "count").nocheck();
    rep.metric("all_ok", all_ok ? 1.0 : 0.0, "bool").tol(0.0);

    if (!all_ok) {
        std::fprintf(stderr,
                     "FAIL: blocked/threaded kernels diverged from "
                     "the naive reference\n");
        return 1;
    }
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("kernels", run)
