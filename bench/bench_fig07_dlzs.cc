/**
 * @file
 * Fig. 7 — DLZS vs the vanilla leading-zero scheme: per-product
 * estimation error (debiased), runtime converter count, and DRAM
 * storage per weight (8-bit integer vs 5-bit sign+LZ code), plus the
 * end-to-end prediction quality of the two-phase DLZS flow.
 */

#include <cmath>
#include <cstdio>

#include "benchmain.h"
#include "common/stats.h"
#include "core/dlzs.h"
#include "model/workload.h"
#include "sparsity/metrics.h"
#include "sparsity/topk.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== Fig. 7: DLZS vs vanilla leading-zero scheme "
                "===\n");

    // Per-product error over uniform int8 operand pairs, after
    // removing each scheme's systematic bias (the descale stage).
    Rng rng(opts.seedOr(0x7D1));
    const int n = opts.quick ? 5000 : 20000;
    std::vector<double> d_ratio, v_ratio;
    for (int i = 0; i < n; ++i) {
        const int x = static_cast<int>(rng.uniformInt(1, 127));
        const int y = static_cast<int>(rng.uniformInt(1, 127));
        MatI8 ym(1, 1);
        ym(0, 0) = static_cast<std::int8_t>(y);
        LzCode code = lzEncodeI8(ym).codes(0, 0);
        const double truth = static_cast<double>(x) * y;
        d_ratio.push_back(dlzsProduct(x, 8, code, 8) / truth);
        v_ratio.push_back(vanillaLzProduct(x, 8, y, 8) / truth);
    }
    const double d_bias = mean(d_ratio), v_bias = mean(v_ratio);
    double d_err = 0.0, v_err = 0.0;
    for (int i = 0; i < n; ++i) {
        d_err += std::fabs(d_ratio[i] / d_bias - 1.0) / n;
        v_err += std::fabs(v_ratio[i] / v_bias - 1.0) / n;
    }
    std::printf("%-32s | %10s %10s\n", "", "vanilla", "DLZS");
    std::printf("%-32s | %9.1f%% %9.1f%%  (paper: 'half error')\n",
                "debiased mean relative error", 100.0 * v_err,
                100.0 * d_err);
    std::printf("%-32s | %10s %10s  (paper: 2 -> 1, then 0 with\n"
                "%-32s | %10s %10s   pre-converted weights)\n",
                "runtime converters per product", "2", "0",
                "(K-prediction phase)", "", "");

    rep.metric("vanilla_debiased_err", v_err, "fraction").tol(1e-3);
    rep.metric("dlzs_debiased_err", d_err, "fraction").tol(1e-3);
    rep.metric("dlzs_err_ratio", d_err / v_err, "ratio")
        .paper(0.5).tol(1e-3);

    // Storage: int8 weight vs sign + 4-bit LZ code.
    MatI8 probe(1, 1);
    LzMatrix lz = lzEncodeI8(probe);
    std::printf("%-32s | %9db %9db  (paper: 8b -> 4b+sign)\n",
                "DRAM bits per weight", 8, lz.bitsPerElement());
    rep.metric("lz_bits_per_weight", lz.bitsPerElement(), "bits")
        .paper(5).tol(0.0);

    // End-to-end: two-phase DLZS prediction quality on a workload.
    std::printf("\n--- two-phase prediction quality (S=1024, T=64) "
                "---\n");
    WorkloadSpec spec;
    spec.seq = 1024;
    spec.queries = 64;
    spec.seed = opts.seedOr(spec.seed);
    auto w = generateWorkload(spec);
    DlzsPrediction pred = dlzsPredict(w.tokens, w.wk, w.q);
    for (double keep : {0.1, 0.2, 0.3}) {
        const int k = static_cast<int>(keep * spec.seq);
        auto sel = exactTopKRows(pred.scoresHat, k);
        auto oracle = exactTopKRows(w.scores, k);
        const double recall = topkRecall(sel, oracle);
        const double mass = softmaxMassRecall(w.scores, sel);
        std::printf("keep %4.0f%%: top-k recall %5.1f%%, softmax "
                    "mass %5.1f%% (oracle %5.1f%%)\n",
                    100.0 * keep, 100.0 * recall, 100.0 * mass,
                    100.0 * softmaxMassRecall(w.scores, oracle));
        if (keep == 0.2) {
            // Discrete top-k selections: near-ties may flip across
            // compilers, so the bound is looser than the default.
            rep.metric("recall_keep20", recall, "fraction").tol(0.02);
            rep.metric("softmax_mass_keep20", mass, "fraction")
                .tol(0.02);
        }
    }
    std::printf("\nPrediction is multiplier-free: %lld multiplies, "
                "%lld shifts, %lld adds.\n",
                static_cast<long long>(pred.ops.muls()),
                static_cast<long long>(pred.ops.shifts()),
                static_cast<long long>(pred.ops.adds()));
    rep.metric("prediction_muls",
               static_cast<double>(pred.ops.muls()), "ops")
        .paper(0).tol(0.0);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig07_dlzs", run)
