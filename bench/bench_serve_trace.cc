/**
 * @file
 * Open-loop trace-replay benchmark (serving v2): the full SLO-aware
 * configuration — DRR per-tenant fairness, prefill chunking, and the
 * bounded paged KV pool — replaying multi-tenant Poisson traces at
 * increasing offered rate until saturation. Each rate point reports
 * goodput (completed requests per wall-clock second), p50/p99
 * request latency, and the timeout/shed/eviction/cold/chunk counters
 * (all machine-dependent under open-loop timing: nocheck, trajectory
 * only — the trajectory log renders the goodput/p99-vs-offered-rate
 * family).
 *
 * A second, fully deterministic section (paused scheduler, one lane)
 * golden-gates the serving-v2 analytic invariants at tolerance 0:
 *
 *  - conservation: submitted = admitted + shed and
 *    admitted = completed + timedOut + failed + degraded;
 *  - page accounting at quiescence: pinned = 0 and
 *    free + resident = capacity;
 *  - recompute reconciliation: the pool-on op total exceeds the
 *    pool-off total by exactly the kvGenerationOps of the keys the
 *    pool-off run found cached but cold decodes had to regenerate —
 *    recompute cost is derived through the engine's own counters,
 *    never asserted;
 *  - the eviction/cold-run/chunk-dispatch counters themselves
 *    (a pure function of the seeded trace).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmain.h"
#include "benchutil.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "model/config.h"
#include "serve/scheduler.h"

namespace {

using namespace sofa;
using serve::Outcome;
using serve::Request;
using serve::RequestResult;
using serve::Scheduler;
using serve::SchedulerConfig;
using serve::SchedulingPolicy;

/** The serving-v2 scheduler configuration under benchmark. */
SchedulerConfig
servingV2Config(int threads)
{
    SchedulerConfig cfg;
    cfg.engine.pipeline.topkFrac = 0.2;
    cfg.engine.computeQuality = false; // throughput focus
    cfg.lanes = threads > 1 ? 2 : 1;
    cfg.headBudget = 8;
    cfg.policy = SchedulingPolicy::DRR;
    cfg.drrQuantumHeads = 4;
    cfg.prefillChunkRows = 24;
    cfg.kvPool.pages = 24;
    cfg.kvPool.pageTokens = 16;
    cfg.faultsFromEnv = false; // hermetic: outcome counts reported
    return cfg;
}

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("open-loop trace replay: DRR + prefill chunking + "
                "paged KV pool (%d thread%s)\n\n",
                opts.threads, opts.threads == 1 ? "" : "s");

    const auto model = models::llama7b();
    const std::uint64_t seed = opts.seedOr(0x50FA7CE0ull);
    const int tenants = 4;
    const int ctx = opts.quick ? 48 : 64;
    const int n = opts.quick ? 400 : 20000;

    // ------------------------------------------------------------
    // Offered-rate sweep (open loop; wall-clock-dependent: nocheck)
    // ------------------------------------------------------------
    // One logical trace with Poisson arrivals; replaying it with a
    // shrinking time scale raises the offered rate — scale 0 submits
    // everything at once (the saturation point). Deadlines turn
    // overload into timeouts, the bounded queue into shedding.
    const std::vector<Request> trace = serve::multiTenantTrace(
        representativeScenarios(model), tenants, n,
        ArrivalPattern::Poisson, /*mean_gap=*/2e-4, seed, ctx,
        /*max_batch=*/1, /*max_heads=*/2);

    Table t;
    t.column("offered", Align::Left)
        .column("rate r/s")
        .column("goodput r/s")
        .column("p50 ms")
        .column("p99 ms")
        .column("timeout")
        .column("shed")
        .column("evict")
        .column("cold")
        .column("chunks");
    const std::vector<double> scales = {4.0, 1.0, 0.0};
    for (std::size_t si = 0; si < scales.size(); ++si) {
        const double scale = scales[si];
        SchedulerConfig cfg = servingV2Config(opts.threads);
        cfg.maxQueue = static_cast<std::size_t>(n) / 4 + 8;
        cfg.defaultDeadlineSeconds = 2.0; // generous: p99 visible
        Scheduler sched(cfg);
        const double t0 = benchutil::now();
        const std::vector<RequestResult> res =
            replayTrace(sched, trace, scale);
        const double wall = benchutil::now() - t0;
        const serve::SchedulerStats st = sched.stats();

        std::vector<double> lat;
        std::int64_t completed = 0;
        for (const RequestResult &r : res) {
            if (r.outcome != Outcome::Completed)
                continue;
            ++completed;
            lat.push_back(r.totalSeconds);
        }
        const double offered =
            scale > 0.0 ? 1.0 / (2e-4 * scale)
                        : static_cast<double>(n) / wall;
        const double goodput = static_cast<double>(completed) / wall;
        const double p50 = lat.empty() ? 0.0 : percentile(lat, 0.50);
        const double p99 = lat.empty() ? 0.0 : percentile(lat, 0.99);
        const std::string tag = "rate" + std::to_string(si);
        char label[32];
        if (scale > 0.0)
            std::snprintf(label, sizeof(label), "%gx gaps", scale);
        else
            std::snprintf(label, sizeof(label), "saturation");
        t.row()
            .cell(label)
            .cell(offered, 0)
            .cell(goodput, 0)
            .cell(1e3 * p50, 2)
            .cell(1e3 * p99, 2)
            .cell(st.timedOut)
            .cell(st.shed)
            .cell(st.kvEvictions)
            .cell(st.kvColdRuns)
            .cell(st.chunkRuns);
        rep.metric(tag + "_offered_rps", offered, "req/s").nocheck();
        rep.metric(tag + "_goodput_rps", goodput, "req/s").nocheck();
        rep.metric(tag + "_latency_p50_s", p50, "s").nocheck();
        rep.metric(tag + "_latency_p99_s", p99, "s").nocheck();
        rep.metric(tag + "_completed",
                   static_cast<double>(completed), "count").nocheck();
        rep.metric(tag + "_timedout",
                   static_cast<double>(st.timedOut), "count")
            .nocheck();
        rep.metric(tag + "_shed", static_cast<double>(st.shed),
                   "count").nocheck();
        rep.metric(tag + "_kv_evictions",
                   static_cast<double>(st.kvEvictions), "count")
            .nocheck();
        rep.metric(tag + "_wall_s", wall, "s").nocheck();
    }
    std::printf("%s\n", t.render().c_str());

    // ------------------------------------------------------------
    // Deterministic invariants (golden-gated at tolerance 0)
    // ------------------------------------------------------------
    // A paused single-lane scheduler admits a burst that overflows
    // the queue (deterministic shedding), then drains: the served
    // schedule — and with it every eviction, cold run and chunk
    // dispatch — is a pure function of the seeded trace.
    const int n_inv = opts.quick ? 160 : 400;
    const std::vector<Request> inv_trace = serve::multiTenantTrace(
        representativeScenarios(model), tenants, n_inv,
        ArrivalPattern::Burst, 0.0, seed + 1, /*max_context=*/24,
        /*max_batch=*/1, /*max_heads=*/2);

    SchedulerConfig icfg = servingV2Config(opts.threads);
    icfg.lanes = 1;          // serialize the pool's op sequence
    icfg.startPaused = true; // admission decoupled from dispatch
    icfg.maxQueue = static_cast<std::size_t>(3 * n_inv / 4);
    icfg.drrQuantumHeads = 2;
    icfg.headBudget = 4;
    icfg.prefillChunkRows = 10;
    icfg.kvPool.pages = 6; // tiny: constant eviction churn
    icfg.kvPool.pageTokens = 16;

    auto replay = [&](bool pool_on) {
        SchedulerConfig cfg = icfg;
        if (!pool_on)
            cfg.kvPool.pages = 0;
        Scheduler sched(cfg);
        std::vector<std::future<RequestResult>> futs;
        for (const Request &r : inv_trace)
            futs.push_back(sched.submit(r));
        sched.drain();
        std::pair<std::vector<RequestResult>,
                  serve::SchedulerStats> out;
        for (auto &f : futs)
            out.first.push_back(f.get());
        out.second = sched.stats();
        // Page accounting at quiescence: nothing is pinned and
        // every page is either free or idle-resident cache.
        const serve::KvPool &pool = sched.kvPool();
        const bool pages_ok =
            pool.pinnedPages() == 0 &&
            pool.freePages() + pool.residentPages() ==
                pool.capacityPages();
        if (pool_on) {
            rep.metric("inv_pinned_at_quiescence",
                       static_cast<double>(pool.pinnedPages()),
                       "pages").tol(0.0);
            rep.metric("inv_pages_conserved", pages_ok ? 1.0 : 0.0,
                       "bool").tol(0.0);
        }
        return out;
    };
    const auto on = replay(true);
    const auto off = replay(false);

    const serve::SchedulerStats &st = on.second;
    const bool conserved =
        st.submitted == st.admitted + st.shed &&
        st.admitted == st.completed + st.timedOut + st.failed +
                           st.degraded;

    // Recompute reconciliation: pool-off keeps pastLen free, so its
    // decodes find their keys cached; the pool-on run's cold decodes
    // regenerate them. The exact op delta is kvGenerationOps of the
    // cached-key difference, summed per request (linear in keys).
    std::int64_t ops_on = 0, ops_off = 0, expected_delta = 0;
    for (std::size_t i = 0; i < on.first.size(); ++i) {
        const RequestResult &a = on.first[i];
        const RequestResult &b = off.first[i];
        if (a.outcome != Outcome::Completed ||
            b.outcome != Outcome::Completed)
            continue;
        ops_on += a.engine.totalOps().total();
        ops_off += b.engine.totalOps().total();
        const std::int64_t cached_delta =
            b.engine.keysCached - a.engine.keysCached;
        expected_delta +=
            kvGenerationOps(cached_delta, inv_trace[i].work.tokenDim,
                            inv_trace[i].work.headDim).total();
    }
    const bool recompute_ok = ops_on - ops_off == expected_delta;

    std::printf(
        "deterministic invariants (%d requests, capacity %zu):\n"
        "  admitted=%lld shed=%lld completed=%lld -> conservation "
        "%s\n"
        "  kv: evictions=%lld cold runs=%lld chunk runs=%lld; page "
        "accounting %s\n"
        "  recompute: pool-on ops - pool-off ops = %lld, expected "
        "%lld -> %s\n",
        n_inv, icfg.maxQueue, static_cast<long long>(st.admitted),
        static_cast<long long>(st.shed),
        static_cast<long long>(st.completed),
        conserved ? "OK" : "VIOLATED",
        static_cast<long long>(st.kvEvictions),
        static_cast<long long>(st.kvColdRuns),
        static_cast<long long>(st.chunkRuns),
        "gated in JSON",
        static_cast<long long>(ops_on - ops_off),
        static_cast<long long>(expected_delta),
        recompute_ok ? "reconciled exactly" : "MISMATCH");

    rep.metric("inv_requests", static_cast<double>(n_inv), "count")
        .tol(0.0);
    rep.metric("inv_admitted", static_cast<double>(st.admitted),
               "count").tol(0.0);
    rep.metric("inv_shed", static_cast<double>(st.shed), "count")
        .tol(0.0);
    rep.metric("inv_completed", static_cast<double>(st.completed),
               "count").tol(0.0);
    rep.metric("inv_conservation", conserved ? 1.0 : 0.0, "bool")
        .tol(0.0);
    rep.metric("inv_kv_evictions",
               static_cast<double>(st.kvEvictions), "count").tol(0.0);
    rep.metric("inv_kv_cold_runs",
               static_cast<double>(st.kvColdRuns), "count").tol(0.0);
    rep.metric("inv_chunk_runs",
               static_cast<double>(st.chunkRuns), "count").tol(0.0);
    rep.metric("inv_recompute_delta_ops",
               static_cast<double>(ops_on - ops_off), "ops").tol(0.0);
    rep.metric("inv_recompute_reconciled", recompute_ok ? 1.0 : 0.0,
               "bool").tol(0.0);
    if (!conserved || !recompute_ok) {
        std::fprintf(stderr, "FAIL: serving-v2 invariants violated\n");
        return 1;
    }

    return 0;
}

} // namespace

SOFA_BENCH_MAIN("serve_trace", run)
