/**
 * @file
 * Fig. 18 — Computation reduction by the LP (low-complexity
 * prediction) mechanism under 0% / 1% / 2% accuracy-loss tolerance,
 * per benchmark; [X, Y] pairs report the reduction of the Attention
 * part and of QKV+Attention (on-demand KV included).
 */

#include <cstdio>

#include "benchmain.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "model/suite.h"

using namespace sofa;

namespace {

int
run(const bench::Options &opts, bench::Reporter &rep)
{
    std::printf("=== Fig. 18: LP computation reduction at loss "
                "tolerance ===\n");
    std::printf("%-24s | %16s %16s %16s\n", "Benchmark",
                "0.25%-loss [A,A+Q]", "1%-loss [A,A+Q]",
                "2%-loss [A,A+Q]");

    // Quick tier: the 6-benchmark subset keeps the golden-gated CI
    // run to ~1s; the full suite is the paper's 20 benchmarks.
    const auto suite = opts.quick ? suiteSmall() : suite20();
    std::vector<double> att_red[3];
    const double losses[3] = {0.25, 1.0, 2.0};
    for (const auto &b : suite) {
        auto w = generateWorkload(b.workloadSpec(384, 24));
        PipelineConfig cfg;
        double red_att[3], red_all[3];
        for (int i = 0; i < 3; ++i) {
            PipelineResult res;
            const double frac =
                minimalKeepFraction(w, cfg, losses[i], &res);
            // Attention compute scales with the kept fraction.
            red_att[i] = 1.0 - frac;
            // QKV+Attention: the KV side saves the never-generated
            // keys; QKV generation for queries remains.
            const double kv_saved =
                1.0 - static_cast<double>(res.keysGenerated) /
                          w.spec.seq;
            red_all[i] = 0.5 * (1.0 - frac) + 0.5 * kv_saved;
            att_red[i].push_back(red_att[i]);
        }
        std::printf(
            "%-24s | [%5.3f, %5.3f] [%5.3f, %5.3f] [%5.3f, %5.3f]\n",
            b.name.c_str(), red_att[0], red_all[0], red_att[1],
            red_all[1], red_att[2], red_all[2]);
    }
    std::printf("\nMean attention-compute reduction: %.1f%% / %.1f%% "
                "/ %.1f%% at 0.25/1/2%% loss\n",
                100.0 * mean(att_red[0]), 100.0 * mean(att_red[1]),
                100.0 * mean(att_red[2]));
    std::printf("Paper: 81.3%% / 87.7%% / 92.6%% attention reduction "
                "at 0/1/2%% loss.\n");

    // minimalKeepFraction walks a discrete keep grid, so the means
    // move in steps; tolerance covers one grid step of jitter.
    rep.metric("att_reduction_loss0", mean(att_red[0]), "fraction")
        .paper(0.813).tol(0.02);
    rep.metric("att_reduction_loss1", mean(att_red[1]), "fraction")
        .paper(0.877).tol(0.02);
    rep.metric("att_reduction_loss2", mean(att_red[2]), "fraction")
        .paper(0.926).tol(0.02);
    return 0;
}

} // namespace

SOFA_BENCH_MAIN("fig18_lp_reduction", run)
